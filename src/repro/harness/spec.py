"""Frozen description of one experiment cell and the pure function that runs it.

:class:`ExperimentSpec` is the unit of work of the experiment layer: an
application, a cluster, a consistency protocol, a node count, a workload and
optional :class:`~repro.hyperion.runtime.RuntimeConfig` overrides.  It is
frozen and hashable, so it can key dictionaries and result caches, and it
serialises to a *canonical* JSON form from which :meth:`ExperimentSpec.cache_key`
derives a content hash: two specs that describe the same physical cell — e.g.
one naming the ``"myrinet"`` preset and one carrying the equivalent
:class:`~repro.cluster.presets.ClusterSpec` object — hash to the same key.

:func:`run_spec` turns a spec into an :class:`~repro.hyperion.runtime.ExecutionReport`.
It is a *pure* function of the spec (the simulator is deterministic given the
config's seed), defined at module level so that process-pool executors can
pickle it; every executor and the legacy ``run_cell`` entry point route
through it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any

from repro.apps.base import app_class, create_app
from repro.apps.workloads import WorkloadPreset
from repro.cluster.presets import ClusterSpec, cluster_by_name
from repro.hyperion.runtime import ExecutionReport, HyperionRuntime, RuntimeConfig

#: bump when the canonical JSON layout changes, so stale caches never match
CACHE_SCHEMA_VERSION = 1


def resolve_cluster(cluster: str | ClusterSpec) -> ClusterSpec:
    """Resolve a preset name to its :class:`ClusterSpec` (pass specs through)."""
    if isinstance(cluster, ClusterSpec):
        return cluster
    return cluster_by_name(cluster)


def resolve_workload(app_name: str, workload) -> object:
    """Resolve the many accepted workload forms to a concrete workload object.

    ``workload`` may be a workload object, a :class:`WorkloadPreset`, a preset
    name (``"bench"``, ``"paper"``, ``"testing"``) or None (bench preset).
    Preset forms are resolved through the application's
    ``workload_from_preset`` hook, so applications outside the preset bundle
    (the generated ``syn-*`` scenarios) scale with the same three names.
    """
    if workload is None:
        preset = WorkloadPreset.bench()
    elif isinstance(workload, str):
        preset = WorkloadPreset.by_name(workload)
    elif isinstance(workload, WorkloadPreset):
        preset = workload
    else:
        return workload
    try:
        cls = app_class(app_name)
    except KeyError:
        # unregistered names keep the preset's own lookup error behaviour
        return preset.workload_for(app_name)
    return cls.workload_from_preset(preset)


def _dataclass_dict(value) -> dict[str, Any]:
    """Class-tagged field dictionary of a (frozen) dataclass instance."""
    return {"__class__": type(value).__name__, **asdict(value)}


def _workload_form(workload) -> Any:
    """Stable, JSON-friendly identity of a workload object.

    Dataclasses (every built-in workload) serialise field-by-field; other
    objects fall back to their attribute dictionary so parameter changes
    still change the cache key.  Objects exposing neither (e.g. slots-only
    with no dataclass fields) end up as ``repr`` — define workloads as
    frozen dataclasses for reliable caching.
    """
    if is_dataclass(workload) and not isinstance(workload, type):
        return _dataclass_dict(workload)
    attributes = getattr(workload, "__dict__", None)
    if attributes:
        return {"__class__": type(workload).__name__, **attributes}
    return repr(workload)


def _qualified_name(obj) -> str:
    """Module-qualified name of a callable (topology factories)."""
    module = getattr(obj, "__module__", "?")
    name = getattr(obj, "__qualname__", getattr(obj, "__name__", repr(obj)))
    return f"{module}.{name}"


@dataclass(frozen=True)
class ExperimentSpec:
    """Identity of one simulated execution (frozen, hashable, cacheable)."""

    app: str
    cluster: str | ClusterSpec
    protocol: str
    num_nodes: int
    #: workload object, :class:`WorkloadPreset`, preset name, or None (bench)
    workload: Any = None
    #: extra runtime parameters; ``protocol`` is always taken from the spec
    config: RuntimeConfig | None = None
    #: run the application's correctness check after execution (not part of
    #: the cell's identity: excluded from equality, hashing and the cache key)
    verify: bool = field(default=False, compare=False)
    #: run under the JMM consistency sanitizer (opt-in shadow layer); like
    #: ``verify`` this does not change what is simulated — the report's
    #: ``to_dict`` stays byte-identical — so it is excluded from the cell's
    #: identity as well.  The findings surface on ``ExecutionReport.sanitizer``.
    sanitize: bool = field(default=False, compare=False)
    #: collect the out-of-band telemetry ledger (metrics + virtual-time
    #: spans, see :mod:`repro.obs`).  Like ``verify``/``sanitize`` it never
    #: changes what is simulated — the report's ``to_dict`` stays
    #: byte-identical — so it is excluded from the cell's identity and does
    #: NOT bypass the result cache: cache-hit cells get a stub ledger marked
    #: ``cached`` instead of a re-execution.  The ledger surfaces on
    #: ``ExecutionReport.telemetry``.
    telemetry: bool = field(default=False, compare=False)
    #: price contention-free compute/read phases analytically instead of one
    #: engine event at a time (see ``Engine.try_fast_advance``).  The
    #: simulated outcome is byte-identical — the determinism suite pins it —
    #: so like ``verify``/``sanitize``/``telemetry`` the flag is excluded
    #: from the cell's identity: cache keys MUST NOT distinguish the modes.
    fast_forward: bool = field(default=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def cluster_name(self) -> str:
        """Name of the cluster preset or spec."""
        return self.cluster.name if isinstance(self.cluster, ClusterSpec) else self.cluster

    @property
    def workload_name(self) -> str:
        """Preset or workload display name (``"custom"`` for plain objects)."""
        if self.workload is None:
            return "bench"
        if isinstance(self.workload, str):
            return self.workload
        return str(getattr(self.workload, "name", "custom"))

    def label(self) -> str:
        """Short display label (used by reports and benchmark names)."""
        return f"{self.app}/{self.cluster_name}/{self.protocol}/n{self.num_nodes}"

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolved_cluster(self) -> ClusterSpec:
        """The concrete :class:`ClusterSpec` this cell runs on."""
        return resolve_cluster(self.cluster)

    def resolved_workload(self) -> object:
        """The concrete workload object for :attr:`app`."""
        return resolve_workload(self.app, self.workload)

    def effective_config(self) -> RuntimeConfig:
        """The runtime config actually used (spec protocol wins)."""
        base = self.config or RuntimeConfig()
        return base.with_overrides(protocol=self.protocol)

    # ------------------------------------------------------------------
    # canonical form / content hash
    # ------------------------------------------------------------------
    def canonical_dict(self) -> dict[str, Any]:
        """Fully resolved, JSON-friendly identity of this cell.

        Preset names are resolved into their constants so that equivalent
        specs produce identical dictionaries regardless of how the cluster or
        workload was spelled.
        """
        cluster = self.resolved_cluster()
        workload = self.resolved_workload()
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "app": self.app,
            "protocol": self.protocol,
            "num_nodes": self.num_nodes,
            "cluster": {
                "name": cluster.name,
                "num_nodes": cluster.num_nodes,
                "machine": _dataclass_dict(cluster.machine),
                "network": _dataclass_dict(cluster.network),
                "software": _dataclass_dict(cluster.software),
                "page_size": cluster.page_size,
                "topology": _qualified_name(cluster.topology_factory),
            },
            "workload": _workload_form(workload),
            "config": _dataclass_dict(self.effective_config()),
        }

    def cache_key(self) -> str:
        """Content hash of the canonical form (hex SHA-256).

        Memoised per instance: the spec is frozen, and resolving presets plus
        hashing is paid several times per cell otherwise (store lookup and
        store write at least).
        """
        cached = self.__dict__.get("_cache_key")
        if cached is not None:
            return cached
        payload = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":"), default=repr
        )
        key = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_cache_key", key)
        return key

    def describe(self) -> dict[str, Any]:
        """Human-oriented summary stored next to cached results."""
        return {
            "label": self.label(),
            "app": self.app,
            "cluster": self.cluster_name,
            "protocol": self.protocol,
            "num_nodes": self.num_nodes,
            "workload": self.workload_name,
        }

    # ------------------------------------------------------------------
    def run(self) -> ExecutionReport:
        """Execute this cell (see :func:`run_spec`)."""
        return run_spec(self)


def run_spec(spec: ExperimentSpec) -> ExecutionReport:
    """Run one experiment cell and return its :class:`ExecutionReport`.

    Pure function of *spec*: the same spec (and therefore the same config
    seed) always produces the same report, which is what lets executors run
    cells in any order or process and lets :class:`~repro.harness.store.ResultStore`
    reuse results across runs.
    """
    report, _ = run_spec_runtime(spec)
    return report


def run_spec_runtime(spec: ExperimentSpec) -> "tuple[ExecutionReport, HyperionRuntime]":
    """Like :func:`run_spec`, but also return the finished runtime.

    The runtime gives callers access to post-run state the report does not
    carry — most notably ``runtime.engine.trace`` for the CLI's
    ``--trace-out`` export.  The report is identical to :func:`run_spec`'s.
    """
    if spec.telemetry:
        # lazy: importing repro.perf at module scope would cycle back into
        # this module through the profiler
        from repro.perf.clock import host_clock

        resolve_started = host_clock()
    cluster = spec.resolved_cluster()
    workload = spec.resolved_workload()
    runtime = HyperionRuntime(
        cluster,
        num_nodes=spec.num_nodes,
        config=spec.effective_config(),
        sanitize=spec.sanitize,
        telemetry=spec.telemetry,
        fast_forward=spec.fast_forward,
    )
    collector = runtime.telemetry
    if collector is not None:
        collector.note_stage("spec_resolve", host_clock() - resolve_started)
        stage = collector.begin_stage("execute")
    app = create_app(spec.app)
    report = app.run(runtime, workload)
    if collector is not None:
        collector.end_stage("execute", stage)
    if spec.verify and not app.verify(report.result, workload):
        raise AssertionError(
            f"{spec.app} produced an incorrect result under "
            f"{spec.protocol} on {cluster.name}/{spec.num_nodes} nodes"
        )
    if collector is not None:
        report.telemetry = collector.finalize(spec, report, runtime)
    return report, runtime
