"""Command-line interface: ``hyperion-sim``.

Sub-commands::

    hyperion-sim figure 2                 # regenerate Figure 2 (Jacobi)
    hyperion-sim all                      # all five figures + improvement table
    hyperion-sim all --jobs 4 --cache-dir .hyperion-cache
    hyperion-sim run jacobi --protocol java_pf --cluster myrinet --nodes 4
    hyperion-sim sweep check_cost --app asp --nodes 4
    hyperion-sim profile asp --nodes 4   # host-side profiling (repro.perf)
    hyperion-sim calibrate                # check the cost model against the paper
    hyperion-sim experiments -o EXPERIMENTS.md
    hyperion-sim describe                 # show the cluster presets / protocols

``--jobs N`` fans the experiment cells out over N worker processes;
``--cache-dir PATH`` persists every cell's result so a repeated invocation
re-runs nothing.  Both flags configure the underlying
:class:`~repro.harness.session.Session` and are accepted by the ``figure``,
``all``, ``sweep``, ``calibrate`` and ``experiments`` subcommands.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.apps.base import available_apps
from repro.apps.workloads import WorkloadPreset
from repro.cluster.presets import cluster_by_name, list_clusters
from repro.core.protocol import available_protocols
from repro.harness.calibration import calibrate
from repro.harness.experiment import run_cell
from repro.harness.figures import FIGURE_APPS, generate_all_figures, generate_figure
from repro.harness.report import (
    ascii_plot,
    figure_table,
    improvement_table,
    render_experiments_document,
)
from repro.harness.session import Session
from repro.harness.spec import ExperimentSpec
from repro.harness.sweep import SWEEPS
from repro.perf import Profiler, perf_report, perf_report_dict
from repro.perf.profiler import SORT_KEYS as PROFILE_SORT_KEYS


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {raw}")
    return value


def _add_session_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="run experiment cells on N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persist per-cell results under PATH and reuse them on re-runs",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hyperion-sim",
        description="Reproduction of 'Remote Object Detection in Cluster-Based Java'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("number", type=int, choices=sorted(FIGURE_APPS))
    figure.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    figure.add_argument("--plot", action="store_true", help="also print an ASCII plot")
    figure.add_argument("--json", action="store_true", help="print JSON instead of a table")
    _add_session_flags(figure)

    everything = sub.add_parser("all", help="regenerate all five figures")
    everything.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    everything.add_argument("--json", action="store_true")
    _add_session_flags(everything)

    run = sub.add_parser("run", help="run a single experiment cell")
    run.add_argument("app", choices=available_apps())
    run.add_argument("--cluster", default="myrinet", choices=list_clusters())
    run.add_argument("--protocol", default="java_pf", choices=available_protocols())
    run.add_argument("--nodes", type=int, default=4)
    run.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    run.add_argument("--verify", action="store_true")

    sweep = sub.add_parser("sweep", help="run one of the ablation sweeps (A1-A4)")
    sweep.add_argument("kind", choices=sorted(SWEEPS))
    sweep.add_argument("--app", required=True, choices=available_apps())
    sweep.add_argument("--cluster", default="myrinet", choices=list_clusters())
    sweep.add_argument("--nodes", type=int, default=4)
    sweep.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    sweep.add_argument(
        "--values",
        default=None,
        help="comma-separated swept values (default: the sweep's own grid)",
    )
    _add_session_flags(sweep)

    profile = sub.add_parser(
        "profile",
        help="profile the simulator itself (host wall time, events/sec, cProfile)",
    )
    profile.add_argument(
        "app",
        nargs="?",
        default=None,
        choices=available_apps(),
        help="profile one cell of this app (default: one cell per app)",
    )
    profile.add_argument("--cluster", default="myrinet", choices=list_clusters())
    profile.add_argument("--protocol", default="java_pf", choices=available_protocols())
    profile.add_argument("--nodes", type=int, default=4)
    profile.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    profile.add_argument(
        "--sort", default="cumulative", choices=sorted(PROFILE_SORT_KEYS),
        help="cProfile sort key for the per-cell tables",
    )
    profile.add_argument(
        "--limit", type=_positive_int, default=15,
        help="rows kept per cProfile table (default: 15)",
    )
    profile.add_argument(
        "--no-cprofile", action="store_true",
        help="skip cProfile capture (pure wall-clock/throughput numbers)",
    )
    profile.add_argument(
        "--json", action="store_true", help="print the aggregate as JSON"
    )

    calibrate_cmd = sub.add_parser("calibrate", help="check the cost model against the paper")
    _add_session_flags(calibrate_cmd)

    experiments = sub.add_parser(
        "experiments", help="regenerate EXPERIMENTS.md from measured figures"
    )
    experiments.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    experiments.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the markdown here instead of stdout",
    )
    _add_session_flags(experiments)

    sub.add_parser("describe", help="list cluster presets, protocols and benchmarks")
    return parser


def _workload(scale: str):
    return WorkloadPreset.by_name(scale)


class CliError(Exception):
    """A user-facing CLI failure (printed without a traceback, exit 2)."""


def _session(args) -> Session:
    """Build the Session the subcommand's --jobs/--cache-dir flags describe."""
    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache_dir", None)
    try:
        return Session.from_options(jobs=jobs, cache_dir=cache_dir)
    except OSError as exc:
        raise CliError(f"--cache-dir {cache_dir!r} is not a usable directory: {exc}")


def cmd_figure(args) -> int:
    data = generate_figure(
        args.number, workload=_workload(args.scale), session=_session(args)
    )
    if args.json:
        print(json.dumps(data.to_dict(), indent=2))
    else:
        print(figure_table(data))
        if args.plot:
            print()
            print(ascii_plot(data))
    return 0


def cmd_all(args) -> int:
    figures = generate_all_figures(workload=_workload(args.scale), session=_session(args))
    if args.json:
        print(json.dumps({n: f.to_dict() for n, f in figures.items()}, indent=2))
        return 0
    for number in sorted(figures):
        print(figure_table(figures[number]))
        print()
    comparisons = {}
    for figure in figures.values():
        for cluster, comparison in figure.comparisons.items():
            comparisons.setdefault(cluster, {})[figure.app] = comparison
    print(improvement_table(comparisons))
    return 0


def cmd_run(args) -> int:
    workload = _workload(args.scale).workload_for(args.app)
    report = run_cell(
        args.app, args.cluster, args.protocol, args.nodes, workload, verify=args.verify
    )
    print(report)
    for key, value in sorted(report.stats.as_dict().items()):
        print(f"  {key:30s} {value}")
    return 0


def _sweep_values(kind: str, raw: Optional[str]):
    if raw is None:
        return None
    parse = {"page_size": int, "threads": int, "check_cost": float}.get(kind, str)
    try:
        return tuple(parse(item) for item in raw.split(",") if item)
    except ValueError:
        raise CliError(
            f"--values for {kind!r} must be comma-separated "
            f"{parse.__name__} values, got {raw!r}"
        )


def cmd_sweep(args) -> int:
    sweep_fn = SWEEPS[args.kind]
    kwargs = {
        "cluster": args.cluster,
        "num_nodes": args.nodes,
        "workload": _workload(args.scale).workload_for(args.app),
        "session": _session(args),
    }
    values = _sweep_values(args.kind, args.values)
    if values is not None:
        value_param = {
            "page_size": "page_sizes",
            "check_cost": "check_cycles",
            "threads": "threads_per_node",
            "balancer": "policies",
        }[args.kind]
        kwargs[value_param] = values
    result = sweep_fn(args.app, **kwargs)
    print(result.render())
    return 0


def cmd_profile(args) -> int:
    apps = [args.app] if args.app else available_apps()
    workload = _workload(args.scale)
    specs = [
        ExperimentSpec(
            app=app,
            cluster=args.cluster,
            protocol=args.protocol,
            num_nodes=args.nodes,
            workload=workload,
        )
        for app in apps
    ]
    profiler = Profiler(
        with_cprofile=not args.no_cprofile, sort=args.sort, limit=args.limit
    )
    profiles = profiler.profile_many(specs)
    if args.json:
        print(json.dumps(perf_report_dict(profiles), indent=2))
        return 0
    print(perf_report(profiles, top=0 if args.no_cprofile else args.limit))
    if not args.no_cprofile:
        for profile in profiles:
            print()
            print(f"== {profile.label} ==")
            print(profile.profile_text.rstrip())
    return 0


def cmd_calibrate(args) -> int:
    report = calibrate(session=_session(args))
    print(report.render())
    return 0 if report.ok else 1


def cmd_experiments(args) -> int:
    document = render_experiments_document(
        workload=_workload(args.scale), session=_session(args)
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(document)
        print(f"wrote {args.output}")
    else:
        print(document)
    return 0


def cmd_describe(_args) -> int:
    print("cluster presets:")
    for name in list_clusters():
        spec = cluster_by_name(name)
        print(f"  {name}: {spec.num_nodes} x {spec.machine.name}, {spec.network.name}")
        for line in spec.cost_model().describe().splitlines():
            print(f"      {line}")
    print("protocols:", ", ".join(available_protocols()))
    print("benchmarks:", ", ".join(available_apps()))
    print("figures:", ", ".join(f"{n} -> {app}" for n, app in sorted(FIGURE_APPS.items())))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``hyperion-sim`` console script."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "figure": cmd_figure,
        "all": cmd_all,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "profile": cmd_profile,
        "calibrate": cmd_calibrate,
        "experiments": cmd_experiments,
        "describe": cmd_describe,
    }
    try:
        return handlers[args.command](args)
    except CliError as exc:
        print(f"hyperion-sim: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
