"""Command-line interface: ``hyperion-sim``.

Sub-commands::

    hyperion-sim figure 2                 # regenerate Figure 2 (Jacobi)
    hyperion-sim all                      # all five figures + improvement table
    hyperion-sim run jacobi --protocol java_pf --cluster myrinet --nodes 4
    hyperion-sim calibrate                # check the cost model against the paper
    hyperion-sim describe                 # show the cluster presets / protocols
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.apps.base import available_apps
from repro.apps.workloads import WorkloadPreset
from repro.cluster.presets import cluster_by_name, list_clusters
from repro.core.protocol import available_protocols
from repro.harness.calibration import calibrate
from repro.harness.experiment import run_cell, run_comparison
from repro.harness.figures import FIGURE_APPS, generate_all_figures, generate_figure
from repro.harness.report import ascii_plot, figure_table, improvement_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hyperion-sim",
        description="Reproduction of 'Remote Object Detection in Cluster-Based Java'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("number", type=int, choices=sorted(FIGURE_APPS))
    figure.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    figure.add_argument("--plot", action="store_true", help="also print an ASCII plot")
    figure.add_argument("--json", action="store_true", help="print JSON instead of a table")

    everything = sub.add_parser("all", help="regenerate all five figures")
    everything.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    everything.add_argument("--json", action="store_true")

    run = sub.add_parser("run", help="run a single experiment cell")
    run.add_argument("app", choices=available_apps())
    run.add_argument("--cluster", default="myrinet", choices=list_clusters())
    run.add_argument("--protocol", default="java_pf", choices=available_protocols())
    run.add_argument("--nodes", type=int, default=4)
    run.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    run.add_argument("--verify", action="store_true")

    sub.add_parser("calibrate", help="check the cost model against the paper")
    sub.add_parser("describe", help="list cluster presets, protocols and benchmarks")
    return parser


def _workload(scale: str):
    return WorkloadPreset.by_name(scale)


def cmd_figure(args) -> int:
    data = generate_figure(args.number, workload=_workload(args.scale))
    if args.json:
        print(json.dumps(data.to_dict(), indent=2))
    else:
        print(figure_table(data))
        if args.plot:
            print()
            print(ascii_plot(data))
    return 0


def cmd_all(args) -> int:
    figures = generate_all_figures(workload=_workload(args.scale))
    if args.json:
        print(json.dumps({n: f.to_dict() for n, f in figures.items()}, indent=2))
        return 0
    for number in sorted(figures):
        print(figure_table(figures[number]))
        print()
    comparisons = {}
    for figure in figures.values():
        for cluster, comparison in figure.comparisons.items():
            comparisons.setdefault(cluster, {})[figure.app] = comparison
    print(improvement_table(comparisons))
    return 0


def cmd_run(args) -> int:
    workload = _workload(args.scale).workload_for(args.app)
    report = run_cell(
        args.app, args.cluster, args.protocol, args.nodes, workload, verify=args.verify
    )
    print(report)
    for key, value in sorted(report.stats.as_dict().items()):
        print(f"  {key:30s} {value}")
    return 0


def cmd_calibrate(_args) -> int:
    report = calibrate()
    print(report.render())
    return 0 if report.ok else 1


def cmd_describe(_args) -> int:
    print("cluster presets:")
    for name in list_clusters():
        spec = cluster_by_name(name)
        print(f"  {name}: {spec.num_nodes} x {spec.machine.name}, {spec.network.name}")
        for line in spec.cost_model().describe().splitlines():
            print(f"      {line}")
    print("protocols:", ", ".join(available_protocols()))
    print("benchmarks:", ", ".join(available_apps()))
    print("figures:", ", ".join(f"{n} -> {app}" for n, app in sorted(FIGURE_APPS.items())))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``hyperion-sim`` console script."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "figure": cmd_figure,
        "all": cmd_all,
        "run": cmd_run,
        "calibrate": cmd_calibrate,
        "describe": cmd_describe,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
