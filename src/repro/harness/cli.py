"""Command-line interface: ``hyperion-sim``.

Sub-commands::

    hyperion-sim figure 2                 # regenerate Figure 2 (Jacobi)
    hyperion-sim all                      # all five figures + improvement table
    hyperion-sim all --jobs 4 --cache-dir .hyperion-cache
    hyperion-sim run jacobi --protocol java_pf --cluster myrinet --nodes 4
    hyperion-sim run asp --trace-out asp.jsonl   # dump the event trace
    hyperion-sim run jacobi --sanitize    # JMM consistency sanitizer findings
    hyperion-sim run jacobi --telemetry   # out-of-band metrics + span ledger
    hyperion-sim run asp --telemetry-out asp-telemetry.json
    hyperion-sim report asp-telemetry.json        # per-phase breakdown
    hyperion-sim report asp-telemetry.json --chrome-out asp-trace.json
    hyperion-sim lint                     # determinism/perf lint (HYP001-007)
    hyperion-sim protocols                # the protocol family + its layers
    hyperion-sim topologies               # cluster shapes + their islands
    hyperion-sim figure 2 --protocols java_ic,java_pf,java_hybrid
    hyperion-sim figure 2 --topology myrinet2x8
    hyperion-sim scenario sweep --topology myrinet2x8
    hyperion-sim scenario list            # the registered syn-* scenarios
    hyperion-sim scenario run syn-false-sharing --seed 7
    hyperion-sim scenario run syn-uniform --pattern-arg write_fraction=0.5
    hyperion-sim scenario sweep --nodes 1,2,4,8 --jobs 4
    hyperion-sim sweep check_cost --app asp --nodes 4
    hyperion-sim grid --apps pi,jacobi --nodes 1,2,4 --jobs 4 \
        --checkpoint-dir .ckpt            # sharded, resumable sweep
    hyperion-sim grid ... --resume        # continue an interrupted grid
    hyperion-sim serve --port 8642        # JSON sweep API (see DESIGN.md)
    hyperion-sim profile asp --nodes 4   # host-side profiling (repro.perf)
    hyperion-sim calibrate                # check the cost model against the paper
    hyperion-sim experiments -o EXPERIMENTS.md
    hyperion-sim describe [section]       # presets / protocols / scenarios ...

``--jobs N`` fans the experiment cells out over N worker processes;
``--cache-dir PATH`` persists every cell's result so a repeated invocation
re-runs nothing.  Both flags configure the underlying
:class:`~repro.harness.session.Session` and are accepted by the ``figure``,
``all``, ``sweep``, ``scenario run``/``scenario sweep``, ``calibrate`` and
``experiments`` subcommands.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.apps.base import available_apps
from repro.apps.workloads import WorkloadPreset
from repro.cluster.presets import cluster_by_name, list_clusters
from repro.cluster.topologies import (
    available_topology_presets,
    topology_preset_by_name,
)
from repro.core.protocol import (
    available_protocols,
    create_protocol,
    protocol_composition,
)
from repro.dsm.page_manager import PageManager
from repro.pm2.isoaddr import IsoAddressAllocator
from repro.harness.figures import (
    FIGURE_APPS,
    PAPER_PROTOCOLS,
    PROTOCOL_FAMILY,
    generate_all_figures,
    generate_figure,
    generate_scenario_grid,
)
from repro.harness.matrix import ExperimentMatrix
from repro.harness.report import (
    ascii_plot,
    figure_table,
    improvement_table,
    render_experiments_document,
)
from repro.harness.session import Session
from repro.harness.spec import ExperimentSpec, resolve_workload, run_spec_runtime
from repro.harness.sweep import ABLATIONS
from repro.hyperion.runtime import RuntimeConfig
from repro.scenarios.registry import (
    SCENARIO_PREFIX,
    available_scenarios,
    get_pattern,
    scenario_parameters,
    scenario_workload,
)
from repro.perf import Profiler, perf_report, perf_report_dict
from repro.perf.profiler import SORT_KEYS as PROFILE_SORT_KEYS
from repro.util.logging import enable_console, get_logger


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {raw}")
    return value


def _add_protocols_flag(parser: argparse.ArgumentParser, default: str) -> None:
    parser.add_argument(
        "--protocols",
        default=default,
        metavar="P,P,...",
        help=f"comma-separated protocol columns (default: {default})",
    )


def _add_topology_flag(
    parser: argparse.ArgumentParser, help_text: str | None = None
) -> None:
    parser.add_argument(
        "--topology",
        default=None,
        choices=available_topology_presets(),
        metavar="PRESET",
        help=help_text
        or (
            "run on a topology preset's cluster instead of --cluster / the "
            "paper platforms (see `hyperion-sim topologies`)"
        ),
    )


def _add_sanitize_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the JMM consistency sanitizer and print its findings",
    )
    parser.add_argument(
        "--sanitize-out",
        default=None,
        metavar="PATH",
        help="also write the sanitizer report to PATH as JSON (implies --sanitize)",
    )


def _add_fast_forward_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fast-forward",
        action="store_true",
        help="price contention-free compute/wait phases analytically instead "
        "of event by event (identical results, fewer host-side events; "
        "ignored when an event trace is recorded)",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="collect the out-of-band telemetry ledger (metrics + virtual-time "
        "spans) and print the per-phase breakdown",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="also write the telemetry ledger to PATH as JSON (implies --telemetry)",
    )
    parser.add_argument(
        "--chrome-out",
        default=None,
        metavar="PATH",
        help="also write a Chrome trace-event JSON for Perfetto (implies --telemetry)",
    )


def _add_log_json_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit progress logging as JSON lines (one object per record)",
    )


def _add_session_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="run experiment cells on N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persist per-cell results under PATH and reuse them on re-runs",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hyperion-sim",
        description="Reproduction of 'Remote Object Detection in Cluster-Based Java'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("number", type=int, choices=sorted(FIGURE_APPS))
    figure.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    figure.add_argument("--plot", action="store_true", help="also print an ASCII plot")
    figure.add_argument("--json", action="store_true", help="print JSON instead of a table")
    _add_protocols_flag(figure, ",".join(PAPER_PROTOCOLS))
    _add_topology_flag(figure)
    _add_session_flags(figure)

    everything = sub.add_parser("all", help="regenerate all five figures")
    everything.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    everything.add_argument("--json", action="store_true")
    _add_protocols_flag(everything, ",".join(PAPER_PROTOCOLS))
    _add_topology_flag(everything)
    _add_session_flags(everything)

    protocols_cmd = sub.add_parser(
        "protocols",
        help="list registered protocols with their description and layers",
    )
    protocols_cmd.add_argument("--json", action="store_true")

    topologies_cmd = sub.add_parser(
        "topologies",
        help="list topology presets (cluster shapes) with their islands",
    )
    topologies_cmd.add_argument("--json", action="store_true")

    run = sub.add_parser("run", help="run a single experiment cell")
    run.add_argument("app", choices=available_apps())
    run.add_argument("--cluster", default="myrinet", choices=list_clusters())
    run.add_argument("--protocol", default="java_pf", choices=available_protocols())
    run.add_argument("--nodes", type=int, default=4)
    run.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    run.add_argument("--verify", action="store_true")
    _add_fast_forward_flag(run)
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record the simulation event trace and write it to PATH as JSONL",
    )
    _add_sanitize_flags(run)
    _add_telemetry_flags(run)

    scenario = sub.add_parser(
        "scenario", help="generated synthetic scenarios (list / run / sweep)"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_sub.add_parser(
        "list", help="list registered scenarios and their pattern parameters"
    )

    scenario_run = scenario_sub.add_parser("run", help="run one scenario cell")
    scenario_run.add_argument("name", choices=available_scenarios())
    scenario_run.add_argument("--cluster", default="myrinet", choices=list_clusters())
    scenario_run.add_argument(
        "--protocol", default="java_pf", choices=available_protocols()
    )
    scenario_run.add_argument("--nodes", type=int, default=4)
    scenario_run.add_argument(
        "--scale", default="bench", choices=["testing", "bench", "paper"]
    )
    scenario_run.add_argument(
        "--seed", type=int, default=None, help="override the pattern's RNG seed"
    )
    scenario_run.add_argument(
        "--pattern-arg",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one pattern parameter (repeatable); see `scenario list`",
    )
    scenario_run.add_argument("--verify", action="store_true")
    _add_fast_forward_flag(scenario_run)
    scenario_run.add_argument("--json", action="store_true")
    scenario_run.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record the simulation event trace and write it to PATH as JSONL",
    )
    _add_sanitize_flags(scenario_run)
    _add_telemetry_flags(scenario_run)
    _add_session_flags(scenario_run)

    scenario_sweep = scenario_sub.add_parser(
        "sweep", help="the scenario comparison grid (protocols x node counts)"
    )
    scenario_sweep.add_argument(
        "name",
        nargs="?",
        default=None,
        choices=available_scenarios(),
        help="sweep one scenario (default: all registered scenarios)",
    )
    scenario_sweep.add_argument("--cluster", default="myrinet", choices=list_clusters())
    scenario_sweep.add_argument(
        "--nodes",
        default="1,2,4,8",
        metavar="N,N,...",
        help="comma-separated node counts (default: 1,2,4,8)",
    )
    scenario_sweep.add_argument(
        "--scale", default="bench", choices=["testing", "bench", "paper"]
    )
    scenario_sweep.add_argument(
        "--seed", type=int, default=None, help="override every pattern's RNG seed"
    )
    _add_protocols_flag(scenario_sweep, ",".join(PROTOCOL_FAMILY))
    _add_topology_flag(scenario_sweep)
    scenario_sweep.add_argument("--json", action="store_true")
    scenario_sweep.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="also write the grid JSON to PATH",
    )
    _add_session_flags(scenario_sweep)

    sweep = sub.add_parser("sweep", help="run one of the ablation sweeps (A1-A4)")
    sweep.add_argument("kind", choices=sorted(ABLATIONS))
    sweep.add_argument("--app", required=True, choices=available_apps())
    sweep.add_argument("--cluster", default="myrinet", choices=list_clusters())
    sweep.add_argument("--nodes", type=int, default=4)
    sweep.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    sweep.add_argument(
        "--values",
        default=None,
        help="comma-separated swept values (default: the sweep's own grid)",
    )
    sweep.add_argument(
        "--sanitize",
        action="store_true",
        help="run every cell under the JMM consistency sanitizer",
    )
    _add_session_flags(sweep)

    grid = sub.add_parser(
        "grid",
        help="run an experiment grid as a sharded, checkpointed, resumable sweep",
    )
    grid.add_argument(
        "--apps",
        required=True,
        metavar="A,A,...",
        help="comma-separated applications (see `hyperion-sim describe benchmarks`)",
    )
    grid.add_argument(
        "--clusters",
        default="myrinet",
        metavar="C,C,...",
        help="comma-separated cluster presets (default: myrinet)",
    )
    grid.add_argument(
        "--nodes",
        default=None,
        metavar="N,N,...",
        help="comma-separated node counts (default: each cluster's own counts)",
    )
    _add_protocols_flag(grid, ",".join(PAPER_PROTOCOLS))
    grid.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    grid.add_argument(
        "--shard-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="cells per checkpoint shard (default: 8, capped at the grid size)",
    )
    grid.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="PATH",
        help="checkpoint finished shards under PATH (required for --resume)",
    )
    grid.add_argument(
        "--resume",
        action="store_true",
        help="reload finished shards from --checkpoint-dir instead of rerunning",
    )
    grid.add_argument("--json", action="store_true", help="print the grid as JSON")
    grid.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="also write the grid JSON to PATH",
    )
    grid.add_argument(
        "--telemetry",
        action="store_true",
        help="run every cell with the out-of-band telemetry ledger on",
    )
    grid.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="write the job-level telemetry (aggregated metrics + cell "
        "ledgers) to PATH as JSON (implies --telemetry)",
    )
    _add_log_json_flag(grid)
    _add_session_flags(grid)

    serve = sub.add_parser(
        "serve",
        help="serve the sweep JSON API (submit/poll/fetch; see DESIGN.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="background sweeps running concurrently (default: 1)",
    )
    serve.add_argument(
        "--shard-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="default cells per checkpoint shard for submitted sweeps",
    )
    serve.add_argument(
        "--checkpoint-root",
        default=None,
        metavar="PATH",
        help="checkpoint each sweep under PATH/<sweep-id>/",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help="run submitted sweeps without the out-of-band telemetry ledger",
    )
    _add_log_json_flag(serve)
    _add_session_flags(serve)

    report_cmd = sub.add_parser(
        "report",
        help="summarise a telemetry ledger JSON (per-phase virtual-time breakdown)",
    )
    report_cmd.add_argument(
        "path", metavar="TELEMETRY_JSON", help="a --telemetry-out ledger file"
    )
    report_cmd.add_argument("--json", action="store_true", help="print the summary as JSON")
    report_cmd.add_argument(
        "--chrome-out",
        default=None,
        metavar="PATH",
        help="also convert the ledger to Chrome trace-event JSON for Perfetto",
    )

    lint = sub.add_parser(
        "lint",
        help="repo-specific determinism/performance lint (HYP001-HYP007)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument("--json", action="store_true")

    profile = sub.add_parser(
        "profile",
        help="profile the simulator itself (host wall time, events/sec, cProfile)",
    )
    profile.add_argument(
        "app",
        nargs="?",
        default=None,
        choices=available_apps(),
        help="profile one cell of this app (default: one cell per app)",
    )
    profile.add_argument("--cluster", default="myrinet", choices=list_clusters())
    profile.add_argument("--protocol", default="java_pf", choices=available_protocols())
    profile.add_argument("--nodes", type=int, default=4)
    profile.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    profile.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the pattern's RNG seed (syn-* apps only)",
    )
    profile.add_argument(
        "--pattern-arg",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one pattern parameter (syn-* apps only, repeatable)",
    )
    _add_fast_forward_flag(profile)
    profile.add_argument(
        "--sort", default="cumulative", choices=sorted(PROFILE_SORT_KEYS),
        help="cProfile sort key for the per-cell tables",
    )
    profile.add_argument(
        "--limit", type=_positive_int, default=15,
        help="rows kept per cProfile table (default: 15)",
    )
    profile.add_argument(
        "--no-cprofile", action="store_true",
        help="skip cProfile capture (pure wall-clock/throughput numbers)",
    )
    profile.add_argument(
        "--json", action="store_true", help="print the aggregate as JSON"
    )

    calibrate_cmd = sub.add_parser("calibrate", help="check the cost model against the paper")
    _add_session_flags(calibrate_cmd)

    experiments = sub.add_parser(
        "experiments", help="regenerate EXPERIMENTS.md from measured figures"
    )
    experiments.add_argument("--scale", default="bench", choices=["testing", "bench", "paper"])
    experiments.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the markdown here instead of stdout",
    )
    _add_protocols_flag(experiments, ",".join(PROTOCOL_FAMILY))
    _add_topology_flag(
        experiments,
        help_text=(
            "restrict the document's topology-grid section to PRESET "
            "(the figure and scenario sections keep the paper platforms)"
        ),
    )
    _add_session_flags(experiments)

    describe = sub.add_parser(
        "describe", help="list cluster presets, protocols, benchmarks and scenarios"
    )
    describe.add_argument(
        "section",
        nargs="?",
        default=None,
        choices=sorted(DESCRIBE_SECTIONS),
        help="print only this section (default: all)",
    )
    return parser


def _workload(scale: str):
    return WorkloadPreset.by_name(scale)


class CliError(Exception):
    """A user-facing CLI failure (printed without a traceback, exit 2)."""


def _session(args) -> Session:
    """Build the Session the subcommand's --jobs/--cache-dir flags describe."""
    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache_dir", None)
    try:
        return Session.from_options(jobs=jobs, cache_dir=cache_dir)
    except OSError as exc:
        raise CliError(
            f"--cache-dir {cache_dir!r} is not a usable directory: {exc}"
        ) from exc


def _protocol_columns(args) -> tuple:
    """Parse and validate a ``--protocols`` comma list."""
    names = tuple(p for p in args.protocols.split(",") if p)
    if not names:
        raise CliError("--protocols selected no protocols")
    known = available_protocols()
    unknown = [p for p in names if p not in known]
    if unknown:
        raise CliError(
            f"unknown protocol(s) {', '.join(unknown)}; "
            f"available: {', '.join(known)}"
        )
    return names


def _figure_clusters(args) -> tuple:
    """The cluster columns a figure plots: the paper pair or one preset."""
    if getattr(args, "topology", None):
        return (args.topology,)
    return ("myrinet", "sci")


def cmd_figure(args) -> int:
    data = generate_figure(
        args.number,
        workload=_workload(args.scale),
        clusters=_figure_clusters(args),
        protocols=_protocol_columns(args),
        session=_session(args),
    )
    if args.json:
        print(json.dumps(data.to_dict(), indent=2))
    else:
        print(figure_table(data))
        if args.plot:
            print()
            print(ascii_plot(data))
    return 0


def cmd_all(args) -> int:
    figures = generate_all_figures(
        workload=_workload(args.scale),
        clusters=_figure_clusters(args),
        protocols=_protocol_columns(args),
        session=_session(args),
    )
    if args.json:
        print(json.dumps({n: f.to_dict() for n, f in figures.items()}, indent=2))
        return 0
    for number in sorted(figures):
        print(figure_table(figures[number]))
        print()
    comparisons = {}
    for figure in figures.values():
        for cluster, comparison in figure.comparisons.items():
            comparisons.setdefault(cluster, {})[figure.app] = comparison
    print(improvement_table(comparisons))
    return 0


def _probe_protocol(name: str):
    """Instantiate *name* over a tiny two-node rig (for ``describe()`` only)."""
    cluster = cluster_by_name("myrinet")
    cost_model = cluster.cost_model()
    isoaddr = IsoAddressAllocator(
        num_nodes=2, arena_size=1 << 20, page_size=cluster.page_size
    )
    page_manager = PageManager(
        num_nodes=2,
        page_size=cluster.page_size,
        isoaddr=isoaddr,
        cost_model=cost_model,
        topology=cluster.topology_factory(2, cluster.network),
    )
    return create_protocol(name, page_manager, cost_model)


def _protocol_entries() -> list[dict]:
    """One row per registered protocol: description plus layer composition."""
    entries = []
    for name in available_protocols():
        protocol = _probe_protocol(name)
        layers = protocol_composition(name)
        entries.append(
            {
                "name": name,
                "description": protocol.describe(),
                "uses_page_faults": bool(protocol.uses_page_faults),
                "detection": layers["detection"] if layers else None,
                "home_policy": layers["home_policy"] if layers else None,
            }
        )
    return entries


def _print_protocol_entries() -> None:
    for entry in _protocol_entries():
        # describe() lines already lead with the protocol name
        print(f"  {entry['description']}")
        if entry["detection"]:
            print(
                f"      layers: detection={entry['detection']}, "
                f"home_policy={entry['home_policy']}"
            )


def cmd_protocols(args) -> int:
    if args.json:
        print(json.dumps(_protocol_entries(), indent=2, sort_keys=True))
        return 0
    print("registered protocols (hyperion-sim run --protocol <name>):")
    _print_protocol_entries()
    return 0


def _topology_entries() -> list[dict]:
    """One row per topology preset: cluster, shape kind, island structure."""
    entries = []
    for name in available_topology_presets():
        preset = topology_preset_by_name(name)
        cluster = preset.cluster()
        topology = preset.topology()
        entries.append(
            {
                "name": name,
                "cluster": cluster.name,
                "num_nodes": cluster.num_nodes,
                "kind": topology.kind,
                "islands": topology.num_islands,
                "network": cluster.network.name,
                "description": preset.description,
            }
        )
    return entries


def _print_topology_entries() -> None:
    for entry in _topology_entries():
        print(
            f"  {entry['name']}: {entry['description']}"
        )
        print(
            f"      kind={entry['kind']}, nodes={entry['num_nodes']}, "
            f"islands={entry['islands']}, network={entry['network']}"
        )


def cmd_topologies(args) -> int:
    if args.json:
        print(json.dumps(_topology_entries(), indent=2, sort_keys=True))
        return 0
    print("topology presets (hyperion-sim scenario sweep --topology <name>):")
    _print_topology_entries()
    return 0


def _print_report(report) -> None:
    print(report)
    for key, value in sorted(report.stats.as_dict().items()):
        print(f"  {key:30s} {value}")


def _print_sanitizer(report, out_path: str | None = None) -> None:
    """Print a sanitizer report (and optionally write it as JSON)."""
    sanitizer = report.sanitizer
    if sanitizer is None:
        raise CliError("the run produced no sanitizer report")
    print()
    print(sanitizer.summary())
    for finding in sanitizer.violations:
        print(f"  VIOLATION [{finding.kind}] x{finding.count}: {finding.detail}")
    for finding in sanitizer.races:
        print(f"  race x{finding.count}: {finding.detail}")
    if out_path:
        try:
            with open(out_path, "w") as handle:
                json.dump(sanitizer.to_dict(), handle, indent=2, sort_keys=True)
        except OSError as exc:
            raise CliError(
                f"cannot write --sanitize-out {out_path!r}: {exc}"
            ) from exc
        print(f"wrote sanitizer report to {out_path}")


def _print_phase_table(telemetry) -> None:
    """Print the per-phase virtual-time breakdown of one ledger."""
    from repro.obs.ledger import phase_table

    rows = phase_table(telemetry)
    print()
    print("virtual-time phase breakdown:")
    if not rows:
        print("  (no spans recorded)")
        return
    total = 0.0
    for phase, seconds, share in rows:
        print(f"  {phase:15s} {seconds:12.6f} s  {share:6.1%}")
        total += seconds
    print(f"  {'total':15s} {total:12.6f} s")


def _write_json(path: str, payload: dict, flag: str) -> None:
    try:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    except OSError as exc:
        raise CliError(f"cannot write {flag} {path!r}: {exc}") from exc


def _print_telemetry(report, telemetry_out: str | None, chrome_out: str | None) -> None:
    """Print a run's phase breakdown and export the ledger / Chrome trace."""
    telemetry = report.telemetry
    if telemetry is None:
        raise CliError("the run produced no telemetry ledger")
    _print_phase_table(telemetry)
    if telemetry_out:
        _write_json(telemetry_out, telemetry.to_dict(), "--telemetry-out")
        print(f"wrote telemetry ledger to {telemetry_out}")
    if chrome_out:
        from repro.obs.chrometrace import write_chrome_trace

        try:
            write_chrome_trace(chrome_out, telemetry)
        except OSError as exc:
            raise CliError(f"cannot write --chrome-out {chrome_out!r}: {exc}") from exc
        print(f"wrote Chrome trace to {chrome_out}")


def _run_with_trace(spec: ExperimentSpec, trace_out: str):
    """Run *spec* with tracing forced on and export the trace as JSONL."""
    base = spec.config or RuntimeConfig()
    traced = dataclasses.replace(spec, config=base.with_overrides(trace=True))
    report, runtime = run_spec_runtime(traced)
    try:
        lines = runtime.engine.trace.write_jsonl(trace_out)
    except OSError as exc:
        raise CliError(f"cannot write --trace-out {trace_out!r}: {exc}") from exc
    print(f"wrote {lines} trace record(s) to {trace_out}")
    return report


def cmd_run(args) -> int:
    # the scale name resolves through the app's own preset hook, so this
    # works for the paper benchmarks and the generated syn-* scenarios alike
    sanitize = args.sanitize or bool(args.sanitize_out)
    telemetry = args.telemetry or bool(args.telemetry_out) or bool(args.chrome_out)
    if args.trace_out or sanitize or telemetry or args.fast_forward:
        spec = ExperimentSpec(
            app=args.app,
            cluster=args.cluster,
            protocol=args.protocol,
            num_nodes=args.nodes,
            workload=args.scale,
            verify=args.verify,
            sanitize=sanitize,
            telemetry=telemetry,
            fast_forward=args.fast_forward,
        )
        if args.trace_out:
            report = _run_with_trace(spec, args.trace_out)
        else:
            report, _ = run_spec_runtime(spec)
    else:
        report = Session().cell(
            args.app, args.cluster, args.protocol, args.nodes,
            workload=args.scale, verify=args.verify,
        )
    _print_report(report)
    if sanitize:
        _print_sanitizer(report, args.sanitize_out)
    if telemetry:
        _print_telemetry(report, args.telemetry_out, args.chrome_out)
    return 0


def _pattern_overrides(name: str, raw_args: list[str], seed: int | None) -> dict:
    """Parse repeated ``--pattern-arg KEY=VALUE`` flags into typed overrides."""
    defaults = scenario_parameters(name)
    overrides: dict = {}
    for item in raw_args:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise CliError(f"--pattern-arg must look like KEY=VALUE, got {item!r}")
        if key not in defaults:
            known = ", ".join(sorted(defaults))
            raise CliError(
                f"scenario {name!r} has no parameter {key!r}; known: {known}"
            )
        target = type(defaults[key])
        try:
            if target is bool:
                lowered = raw.lower()
                if lowered not in ("true", "false", "0", "1"):
                    raise ValueError(raw)
                overrides[key] = lowered in ("true", "1")
            else:
                overrides[key] = target(raw)
        except ValueError as exc:
            raise CliError(
                f"--pattern-arg {key}: expected a {target.__name__} value, got {raw!r}"
            ) from exc
    if seed is not None:
        overrides["seed"] = seed
    return overrides


def cmd_scenario(args) -> int:
    if args.scenario_command == "list":
        print("registered scenarios (hyperion-sim scenario run <name>):")
        _print_scenario_entries()
        return 0

    if args.scenario_command == "run":
        try:
            workload = scenario_workload(
                args.name,
                scale=args.scale,
                **_pattern_overrides(args.name, args.pattern_arg, args.seed),
            )
        except (KeyError, ValueError) as exc:
            raise CliError(str(exc)) from exc
        sanitize = args.sanitize or bool(args.sanitize_out)
        telemetry = (
            args.telemetry or bool(args.telemetry_out) or bool(args.chrome_out)
        )
        spec = ExperimentSpec(
            app=args.name,
            cluster=args.cluster,
            protocol=args.protocol,
            num_nodes=args.nodes,
            workload=workload,
            verify=args.verify,
            sanitize=sanitize,
            telemetry=telemetry,
            fast_forward=args.fast_forward,
        )
        if args.trace_out:
            if args.jobs != 1 or args.cache_dir:
                print(
                    "hyperion-sim: note: --trace-out runs the cell directly; "
                    "--jobs/--cache-dir are ignored",
                    file=sys.stderr,
                )
            report = _run_with_trace(spec, args.trace_out)
        else:
            report = _session(args).run_one(spec)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            _print_report(report)
        if sanitize:
            _print_sanitizer(report, args.sanitize_out)
        if telemetry:
            _print_telemetry(report, args.telemetry_out, args.chrome_out)
        return 0

    # sweep: the scenario comparison grid
    try:
        node_counts = tuple(int(n) for n in args.nodes.split(",") if n)
    except ValueError as exc:
        raise CliError(
            f"--nodes must be comma-separated integers, got {args.nodes!r}"
        ) from exc
    if not node_counts:
        raise CliError("--nodes selected no node counts")
    try:
        grid = generate_scenario_grid(
            scenarios=[args.name] if args.name else None,
            cluster=args.topology or args.cluster,
            node_counts=node_counts,
            protocols=_protocol_columns(args),
            workload=args.scale,
            seed=args.seed,
            session=_session(args),
        )
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    dropped = [n for n in node_counts if n not in grid.node_counts]
    if dropped:
        print(
            f"hyperion-sim: note: node count(s) {dropped} exceed cluster "
            f"{grid.cluster!r}'s size and were skipped",
            file=sys.stderr,
        )
    payload = grid.to_dict()
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(grid.render())
    return 0


def _sweep_values(kind: str, raw: str | None):
    if raw is None:
        return None
    parse = ABLATIONS[kind].value_type
    try:
        return tuple(parse(item) for item in raw.split(",") if item)
    except ValueError as exc:
        raise CliError(
            f"--values for {kind!r} must be comma-separated "
            f"{parse.__name__} values, got {raw!r}"
        ) from exc


def cmd_sweep(args) -> int:
    result = _session(args).ablation(
        args.kind,
        args.app,
        cluster=args.cluster,
        num_nodes=args.nodes,
        values=_sweep_values(args.kind, args.values),
        # resolve through the app's preset hook so syn-* scenarios sweep too
        workload=resolve_workload(args.app, args.scale),
        sanitize=args.sanitize,
    )
    print(result.render())
    if args.sanitize:
        print()
        unclean = 0
        for (protocol, value), report in sorted(
            result.sanitizers.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
        ):
            print(f"  {protocol} @ {value}: {report.summary()}")
            unclean += 0 if report.clean else 1
        if unclean:
            print(f"sanitizer: {unclean} cell(s) with protocol violations")
            return 1
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.lint import lint_paths

    try:
        findings = lint_paths(args.paths)
    except (FileNotFoundError, SyntaxError) as exc:
        raise CliError(str(exc)) from exc
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        if not findings:
            print(f"lint: clean ({', '.join(args.paths)})")
    return 1 if findings else 0


def cmd_profile(args) -> int:
    apps = [args.app] if args.app else available_apps()
    workload = _workload(args.scale)
    if args.pattern_arg or args.seed is not None:
        if not (args.app and args.app.startswith(SCENARIO_PREFIX)):
            raise CliError("--pattern-arg/--seed need a single syn-* scenario app")
        try:
            workload = scenario_workload(
                args.app,
                scale=args.scale,
                **_pattern_overrides(args.app, args.pattern_arg, args.seed),
            )
        except (KeyError, ValueError) as exc:
            raise CliError(str(exc)) from exc
    specs = [
        ExperimentSpec(
            app=app,
            cluster=args.cluster,
            protocol=args.protocol,
            num_nodes=args.nodes,
            workload=workload,
            fast_forward=args.fast_forward,
        )
        for app in apps
    ]
    profiler = Profiler(
        with_cprofile=not args.no_cprofile, sort=args.sort, limit=args.limit
    )
    profiles = profiler.profile_many(specs)
    if args.json:
        print(json.dumps(perf_report_dict(profiles), indent=2))
        return 0
    print(perf_report(profiles, top=0 if args.no_cprofile else args.limit))
    if not args.no_cprofile:
        for profile in profiles:
            print()
            print(f"== {profile.label} ==")
            print(profile.profile_text.rstrip())
    return 0


def cmd_calibrate(args) -> int:
    report = _session(args).calibrate()
    print(report.render())
    return 0 if report.ok else 1


def _comma_list(raw: str, flag: str, parse=str) -> list:
    try:
        values = [parse(item) for item in raw.split(",") if item]
    except ValueError as exc:
        raise CliError(
            f"{flag} must be comma-separated {parse.__name__} values, got {raw!r}"
        ) from exc
    if not values:
        raise CliError(f"{flag} selected no values")
    return values


def cmd_grid(args) -> int:
    from repro.harness.jobs import CheckpointMismatch, SweepInterrupted

    if args.resume and not args.checkpoint_dir:
        raise CliError("--resume needs --checkpoint-dir to resume from")
    enable_console(json_lines=args.log_json)
    logger = get_logger("harness.grid")
    telemetry = args.telemetry or bool(args.telemetry_out)
    matrix = (
        ExperimentMatrix()
        .apps(*_comma_list(args.apps, "--apps"))
        .clusters(*_comma_list(args.clusters, "--clusters"))
        .protocols(*_protocol_columns(args))
        .workload(args.scale)
    )
    if args.nodes:
        matrix = matrix.nodes(*_comma_list(args.nodes, "--nodes", int))
    job = _session(args).job(
        matrix,
        checkpoint_dir=args.checkpoint_dir,
        shard_size=args.shard_size,
        resume=args.resume,
        telemetry=telemetry,
        progress_callback=lambda p: logger.info(
            "%s", p.render(), extra={"progress": p.to_dict()}
        ),
    )
    try:
        result = job.run()
    except CheckpointMismatch as exc:
        raise CliError(str(exc)) from exc
    except SweepInterrupted as exc:
        logger.warning("%s", exc)
        return 3
    progress = job.progress
    logger.info(
        "grid complete: %d cells (resumed %d, cache hits %d, executed %d)",
        progress.total_cells,
        progress.resumed_cells,
        progress.cache_hits,
        progress.executed_cells,
        extra={"progress": progress.to_dict()},
    )
    if args.telemetry_out:
        _write_json(args.telemetry_out, job.telemetry(), "--telemetry-out")
        print(f"wrote job telemetry to {args.telemetry_out}")
    payload = result.to_dict()
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    if args.json or not args.output:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_serve(args) -> int:
    from repro.harness.service import serve

    enable_console(json_lines=args.log_json)
    logger = get_logger("harness.serve")
    server = serve(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        workers=args.workers,
        cache_dir=args.cache_dir,
        checkpoint_root=args.checkpoint_root,
        shard_size=args.shard_size,
        verbose=args.verbose,
        telemetry=not args.no_telemetry,
    )
    logger.info(
        "hyperion-sim serve: listening on %s", server.address,
        extra={"address": server.address},
    )
    logger.info("submit sweeps with POST /sweeps, stop with POST /shutdown")
    server.serve_until_shutdown()
    logger.info("hyperion-sim serve: drained and stopped")
    return 0


def cmd_report(args) -> int:
    from repro.obs.ledger import phase_table

    try:
        with open(args.path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CliError(f"cannot read telemetry ledger {args.path!r}: {exc}") from exc
    if not isinstance(payload, dict) or "spans" not in payload:
        raise CliError(
            f"{args.path!r} does not look like a telemetry ledger "
            "(expected the JSON written by --telemetry-out)"
        )
    rows = phase_table(payload)
    if args.json:
        print(
            json.dumps(
                {
                    "label": payload.get("label"),
                    "cached": payload.get("cached", False),
                    "version": payload.get("version"),
                    "phases": [
                        {"phase": phase, "seconds": seconds, "share": share}
                        for phase, seconds, share in rows
                    ],
                    "total_seconds": sum(seconds for _, seconds, _ in rows),
                    "trace_summary": payload.get("trace_summary"),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        label = payload.get("label", "?")
        version = payload.get("version", "?")
        print(f"telemetry ledger: {label} (version {version})")
        if payload.get("cached"):
            print("  cached cell: stub ledger, no engine metrics or spans")
        host = payload.get("host") or {}
        if host.get("wall_seconds"):
            line = f"  host: {host['wall_seconds']:.3f} s wall"
            if host.get("events"):
                line += f", {host['events']} events"
            if host.get("events_per_second"):
                line += f" ({host['events_per_second']:.0f} events/s)"
            print(line)
        families = (payload.get("metrics") or {}).get("families", {})
        if families:
            print(f"  metrics: {len(families)} families")
        summary = payload.get("trace_summary")
        if summary:
            kinds = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(summary.get("by_kind", {}).items())
            )
            print(f"  trace: {summary.get('records', 0)} record(s)  {kinds}")
        _print_phase_table(payload)
    if args.chrome_out:
        from repro.obs.chrometrace import write_chrome_trace

        try:
            write_chrome_trace(args.chrome_out, payload)
        except OSError as exc:
            raise CliError(
                f"cannot write --chrome-out {args.chrome_out!r}: {exc}"
            ) from exc
        print(f"wrote Chrome trace to {args.chrome_out}")
    return 0


def cmd_experiments(args) -> int:
    document = render_experiments_document(
        workload=_workload(args.scale),
        session=_session(args),
        protocols=_protocol_columns(args),
        topologies=[args.topology] if args.topology else None,
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(document)
        print(f"wrote {args.output}")
    else:
        print(document)
    return 0


def _describe_clusters() -> None:
    print("cluster presets:")
    for name in list_clusters():
        spec = cluster_by_name(name)
        print(f"  {name}: {spec.num_nodes} x {spec.machine.name}, {spec.network.name}")
        for line in spec.cost_model().describe().splitlines():
            print(f"      {line}")


def _describe_protocols() -> None:
    print("protocols:")
    _print_protocol_entries()


def _describe_benchmarks() -> None:
    paper_apps = [app for app in available_apps() if not app.startswith("syn-")]
    print("benchmarks:", ", ".join(paper_apps))


def _print_scenario_entries() -> None:
    for name in available_scenarios():
        pattern = get_pattern(name)
        print(f"  {name}: {pattern.description}")
        parameters = ", ".join(
            f"{key}={value}" for key, value in scenario_parameters(name).items()
        )
        print(f"      parameters: {parameters}")


def _describe_scenarios() -> None:
    print("scenarios:")
    _print_scenario_entries()


def _describe_figures() -> None:
    print("figures:", ", ".join(f"{n} -> {app}" for n, app in sorted(FIGURE_APPS.items())))


def _describe_topologies() -> None:
    print("topologies:")
    _print_topology_entries()


DESCRIBE_SECTIONS = {
    "clusters": _describe_clusters,
    "protocols": _describe_protocols,
    "topologies": _describe_topologies,
    "benchmarks": _describe_benchmarks,
    "scenarios": _describe_scenarios,
    "figures": _describe_figures,
}


def cmd_describe(args) -> int:
    section = getattr(args, "section", None)
    if section:
        DESCRIBE_SECTIONS[section]()
        return 0
    for printer in DESCRIBE_SECTIONS.values():
        printer()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``hyperion-sim`` console script."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "figure": cmd_figure,
        "all": cmd_all,
        "protocols": cmd_protocols,
        "topologies": cmd_topologies,
        "run": cmd_run,
        "scenario": cmd_scenario,
        "sweep": cmd_sweep,
        "grid": cmd_grid,
        "serve": cmd_serve,
        "report": cmd_report,
        "lint": cmd_lint,
        "profile": cmd_profile,
        "calibrate": cmd_calibrate,
        "experiments": cmd_experiments,
        "describe": cmd_describe,
    }
    try:
        return handlers[args.command](args)
    except CliError as exc:
        print(f"hyperion-sim: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
