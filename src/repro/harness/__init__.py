"""Experiment harness: regenerate every figure and summary of the paper.

The execution layer is organised around five abstractions (DESIGN.md has the
full architecture):

* :class:`~repro.harness.spec.ExperimentSpec` — a frozen, hashable
  description of one experiment cell with a canonical :meth:`cache_key`;
* :class:`~repro.harness.matrix.ExperimentMatrix` — a fluent builder that
  expands cartesian grids of specs;
* :class:`~repro.harness.executor.Executor` implementations —
  :class:`~repro.harness.executor.SerialExecutor` and the process-pool
  :class:`~repro.harness.executor.ParallelExecutor`;
* :class:`~repro.harness.store.ResultStore` — a content-addressed JSON cache
  of per-cell results, safe for concurrent writers across processes;
* :class:`~repro.harness.session.Session` — the facade every experiment
  routes through, combining an executor with an optional store.  Its
  methods (``cell``, ``comparison``, ``sweep``, ``ablation``, ``figure``,
  ``calibrate``, ``job``, ...) are the one public entry-point surface; the
  common per-cell record they share is
  :class:`~repro.harness.session.CellResult`.

On top of that sit the paper-specific layers:

* :mod:`~repro.harness.experiment` — protocol comparisons and the
  spec-batching helpers the figure pipeline uses;
* :mod:`~repro.harness.sweep` — the declarative :data:`ABLATIONS` registry
  backing ``Session.ablation`` (A1-A4);
* :mod:`~repro.harness.jobs` — sharded, checkpointed, resumable
  :class:`~repro.harness.jobs.SweepJob` execution;
* :mod:`~repro.harness.service` — the ``hyperion-sim serve`` JSON API;
* :mod:`~repro.harness.figures` — Figures 1-5 of the paper;
* :mod:`~repro.harness.report` — text tables, ASCII plots and the Section 4.3
  improvement summary;
* :mod:`~repro.harness.calibration` — checks the cost model against the
  constants the paper publishes and the improvements it reports;
* :mod:`~repro.harness.cli` — the ``hyperion-sim`` command-line interface.

The historical module-level wrappers (``run_cell``, ``run_comparison``,
``run_sweep`` and the four ``sweep_*`` functions) still exist in their
modules as deprecated shims but are no longer part of this package's public
surface; new code goes through :class:`Session`.
"""

from repro.harness.spec import ExperimentSpec, run_spec
from repro.harness.matrix import ExperimentMatrix
from repro.harness.executor import Executor, ParallelExecutor, SerialExecutor
from repro.harness.store import ResultStore, StoreSchemaError
from repro.harness.session import CellResult, Session, SessionResult, default_session
from repro.harness.experiment import (
    ExperimentCell,
    ProtocolComparison,
    comparison_specs,
    fill_comparison,
)
from repro.harness.jobs import (
    CheckpointMismatch,
    SweepInterrupted,
    SweepJob,
    SweepProgress,
)
from repro.harness.service import ServiceServer, SweepService, serve
from repro.harness.figures import (
    FIGURE_APPS,
    FigureData,
    FigureSeries,
    generate_all_figures,
    generate_figure,
)
from repro.harness.report import (
    ascii_plot,
    figure_table,
    improvement_summary,
    improvement_table,
    render_experiments_document,
)
from repro.harness.calibration import CalibrationReport, calibrate
from repro.harness.sweep import ABLATIONS, Ablation, SweepResult, ablation_by_name

__all__ = [
    # execution layer
    "ExperimentSpec",
    "ExperimentMatrix",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ResultStore",
    "StoreSchemaError",
    "Session",
    "SessionResult",
    "CellResult",
    "default_session",
    "run_spec",
    # comparisons
    "ExperimentCell",
    "ProtocolComparison",
    "comparison_specs",
    "fill_comparison",
    # sharded resumable sweeps
    "SweepJob",
    "SweepProgress",
    "SweepInterrupted",
    "CheckpointMismatch",
    # the sweep service
    "SweepService",
    "ServiceServer",
    "serve",
    # figures and reports
    "FIGURE_APPS",
    "FigureSeries",
    "FigureData",
    "generate_figure",
    "generate_all_figures",
    "figure_table",
    "ascii_plot",
    "improvement_table",
    "improvement_summary",
    "render_experiments_document",
    # calibration
    "CalibrationReport",
    "calibrate",
    # ablations
    "SweepResult",
    "Ablation",
    "ABLATIONS",
    "ablation_by_name",
]
