"""Experiment harness: regenerate every figure and summary of the paper.

* :mod:`~repro.harness.experiment` — run a single (application, cluster,
  protocol, node-count) cell and grids of them;
* :mod:`~repro.harness.figures` — Figures 1-5 of the paper (execution time
  vs. number of nodes, four series each);
* :mod:`~repro.harness.report` — text tables, ASCII plots and the Section 4.3
  improvement summary;
* :mod:`~repro.harness.calibration` — checks the cost model against the
  constants the paper publishes and the improvements it reports;
* :mod:`~repro.harness.sweep` — parameter sweeps for the ablation benchmarks;
* :mod:`~repro.harness.cli` — the ``hyperion-sim`` command-line interface.
"""

from repro.harness.experiment import (
    ExperimentCell,
    ProtocolComparison,
    run_cell,
    run_comparison,
)
from repro.harness.figures import (
    FIGURE_APPS,
    FigureData,
    FigureSeries,
    generate_all_figures,
    generate_figure,
)
from repro.harness.report import (
    ascii_plot,
    figure_table,
    improvement_summary,
    improvement_table,
)
from repro.harness.calibration import CalibrationReport, calibrate
from repro.harness.sweep import sweep_balancer, sweep_check_cost, sweep_page_size, sweep_threads_per_node

__all__ = [
    "ExperimentCell",
    "ProtocolComparison",
    "run_cell",
    "run_comparison",
    "FIGURE_APPS",
    "FigureSeries",
    "FigureData",
    "generate_figure",
    "generate_all_figures",
    "figure_table",
    "ascii_plot",
    "improvement_table",
    "improvement_summary",
    "CalibrationReport",
    "calibrate",
    "sweep_page_size",
    "sweep_check_cost",
    "sweep_threads_per_node",
    "sweep_balancer",
]
