"""Experiment harness: regenerate every figure and summary of the paper.

The execution layer is organised around five abstractions (DESIGN.md has the
full architecture):

* :class:`~repro.harness.spec.ExperimentSpec` — a frozen, hashable
  description of one experiment cell with a canonical :meth:`cache_key`;
* :class:`~repro.harness.matrix.ExperimentMatrix` — a fluent builder that
  expands cartesian grids of specs;
* :class:`~repro.harness.executor.Executor` implementations —
  :class:`~repro.harness.executor.SerialExecutor` and the process-pool
  :class:`~repro.harness.executor.ParallelExecutor`;
* :class:`~repro.harness.store.ResultStore` — a content-addressed JSON cache
  of per-cell results;
* :class:`~repro.harness.session.Session` — the facade every experiment
  routes through, combining an executor with an optional store.

On top of that sit the paper-specific entry points:

* :mod:`~repro.harness.experiment` — single cells and protocol comparisons
  (``run_cell`` / ``run_comparison`` remain as thin wrappers);
* :mod:`~repro.harness.figures` — Figures 1-5 of the paper (execution time
  vs. number of nodes, four series each);
* :mod:`~repro.harness.report` — text tables, ASCII plots and the Section 4.3
  improvement summary;
* :mod:`~repro.harness.calibration` — checks the cost model against the
  constants the paper publishes and the improvements it reports;
* :mod:`~repro.harness.sweep` — parameter sweeps for the ablation benchmarks;
* :mod:`~repro.harness.cli` — the ``hyperion-sim`` command-line interface.
"""

from repro.harness.spec import ExperimentSpec, run_spec
from repro.harness.matrix import ExperimentMatrix
from repro.harness.executor import Executor, ParallelExecutor, SerialExecutor
from repro.harness.store import ResultStore
from repro.harness.session import Session, SessionResult
from repro.harness.experiment import (
    ExperimentCell,
    ProtocolComparison,
    run_cell,
    run_comparison,
)
from repro.harness.figures import (
    FIGURE_APPS,
    FigureData,
    FigureSeries,
    generate_all_figures,
    generate_figure,
)
from repro.harness.report import (
    ascii_plot,
    figure_table,
    improvement_summary,
    improvement_table,
    render_experiments_document,
)
from repro.harness.calibration import CalibrationReport, calibrate
from repro.harness.sweep import (
    SweepResult,
    run_sweep,
    sweep_balancer,
    sweep_check_cost,
    sweep_page_size,
    sweep_threads_per_node,
)

__all__ = [
    "ExperimentSpec",
    "ExperimentMatrix",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ResultStore",
    "Session",
    "SessionResult",
    "run_spec",
    "ExperimentCell",
    "ProtocolComparison",
    "run_cell",
    "run_comparison",
    "FIGURE_APPS",
    "FigureSeries",
    "FigureData",
    "generate_figure",
    "generate_all_figures",
    "figure_table",
    "ascii_plot",
    "improvement_table",
    "improvement_summary",
    "render_experiments_document",
    "CalibrationReport",
    "calibrate",
    "SweepResult",
    "run_sweep",
    "sweep_page_size",
    "sweep_check_cost",
    "sweep_threads_per_node",
    "sweep_balancer",
]
