"""Run individual experiment cells and protocol comparisons.

An *experiment cell* is one simulated execution: an application, on a cluster
preset, with a consistency protocol, on a given number of nodes, at a given
workload.  A *protocol comparison* runs the same application/cluster/node
grid under several protocols and derives the quantity the paper reports: the
relative improvement of ``java_pf`` over ``java_ic``.

Cells are described by :class:`~repro.harness.spec.ExperimentSpec` (of which
:data:`ExperimentCell` is the historical alias) and executed through a
:class:`~repro.harness.session.Session` —
:meth:`~repro.harness.session.Session.cell` and
:meth:`~repro.harness.session.Session.comparison` are the public entry
points.  The module-level :func:`run_cell` and :func:`run_comparison`
remain as deprecated shims delegating to the session surface;
:func:`comparison_specs` and :func:`fill_comparison` are the (blessed)
building blocks the figure pipeline batches many comparisons with.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.cluster.presets import ClusterSpec
from repro.harness.session import Session, SessionResult, default_session
from repro.harness.spec import (
    ExperimentSpec,
    resolve_cluster,
    resolve_workload,
)
from repro.hyperion.runtime import ExecutionReport, RuntimeConfig

#: backward-compatible name: the cell identity is now the (richer) spec
ExperimentCell = ExperimentSpec

# re-exported for callers that used the private helpers
_resolve_cluster = resolve_cluster


def _resolve_workload(app_name: str, workload) -> object:
    return resolve_workload(app_name, workload)


def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_cell(
    app_name: str,
    cluster: str | ClusterSpec,
    protocol: str,
    num_nodes: int,
    workload=None,
    config: RuntimeConfig | None = None,
    verify: bool = False,
    session: Session | None = None,
) -> ExecutionReport:
    """Deprecated: use :meth:`repro.harness.session.Session.cell`.

    ``workload`` may be a workload object, a :class:`WorkloadPreset`, a preset
    name (``"bench"``, ``"paper"``, ``"testing"``) or None (bench preset).
    With ``verify=True`` the application's correctness check runs on the
    result and a failure raises ``AssertionError``.
    """
    _warn_deprecated("repro.harness.experiment.run_cell", "Session.cell")
    return (session or default_session()).cell(
        app_name,
        cluster,
        protocol,
        num_nodes,
        workload=workload,
        config=config,
        verify=verify,
    )


@dataclass
class ProtocolComparison:
    """All protocol runs of one application on one cluster."""

    app: str
    cluster: str
    workload_name: str
    node_counts: list[int]
    protocols: list[str]
    reports: dict[tuple[str, int], ExecutionReport] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def report(self, protocol: str, num_nodes: int) -> ExecutionReport:
        """The report of one (protocol, node-count) cell."""
        return self.reports[(protocol, num_nodes)]

    def series(self, protocol: str) -> list[tuple[int, float]]:
        """Execution-time series (nodes, seconds) for *protocol*."""
        return [
            (n, self.reports[(protocol, n)].execution_seconds) for n in self.node_counts
        ]

    def improvement_percent(self, num_nodes: int, baseline: str = "java_ic", candidate: str = "java_pf") -> float:
        """Relative improvement of *candidate* over *baseline* at *num_nodes*."""
        base = self.reports[(baseline, num_nodes)].execution_seconds
        cand = self.reports[(candidate, num_nodes)].execution_seconds
        if base <= 0:
            return 0.0
        return 100.0 * (base - cand) / base

    def improvements(self, baseline: str = "java_ic", candidate: str = "java_pf") -> dict[int, float]:
        """Improvement per node count."""
        return {
            n: self.improvement_percent(n, baseline, candidate) for n in self.node_counts
        }

    def mean_improvement(self, baseline: str = "java_ic", candidate: str = "java_pf") -> float:
        """Average improvement across node counts (the paper's SCI summary)."""
        values = list(self.improvements(baseline, candidate).values())
        return sum(values) / len(values) if values else 0.0


def comparison_specs(
    app_name: str,
    cluster: str | ClusterSpec,
    node_counts: Sequence[int] | None = None,
    workload=None,
    protocols: Iterable[str] = ("java_ic", "java_pf"),
    config: RuntimeConfig | None = None,
    verify: bool = False,
) -> tuple[ProtocolComparison, list[ExperimentSpec]]:
    """Empty :class:`ProtocolComparison` plus the specs that will fill it.

    Splitting spec construction from execution lets callers batch the specs
    of *many* comparisons into one ``Session.run`` (the all-figures path does
    exactly that to parallelise across figures, not just within one).
    """
    spec = resolve_cluster(cluster)
    counts = list(node_counts) if node_counts is not None else spec.node_counts()
    protocol_list = list(protocols)
    workload_name = workload if isinstance(workload, str) else getattr(workload, "name", "custom")
    comparison = ProtocolComparison(
        app=app_name,
        cluster=spec.name,
        workload_name=str(workload_name),
        node_counts=counts,
        protocols=protocol_list,
    )
    specs = [
        ExperimentSpec(
            app=app_name,
            cluster=spec,
            protocol=protocol,
            num_nodes=n,
            workload=workload,
            config=config,
            verify=verify,
        )
        for protocol in protocol_list
        for n in counts
    ]
    return comparison, specs


def fill_comparison(
    comparison: ProtocolComparison,
    specs: Sequence[ExperimentSpec],
    result: SessionResult,
) -> ProtocolComparison:
    """Populate *comparison* with the reports *result* holds for *specs*."""
    for spec in specs:
        comparison.reports[(spec.protocol, spec.num_nodes)] = result[spec]
    return comparison


def run_comparison(
    app_name: str,
    cluster: str | ClusterSpec,
    node_counts: Sequence[int] | None = None,
    workload=None,
    protocols: Iterable[str] = ("java_ic", "java_pf"),
    config: RuntimeConfig | None = None,
    verify: bool = False,
    session: Session | None = None,
) -> ProtocolComparison:
    """Deprecated: use :meth:`repro.harness.session.Session.comparison`."""
    _warn_deprecated("repro.harness.experiment.run_comparison", "Session.comparison")
    return (session or default_session()).comparison(
        app_name,
        cluster,
        node_counts=node_counts,
        workload=workload,
        protocols=protocols,
        config=config,
        verify=verify,
    )
