"""Run individual experiment cells and protocol comparisons.

An *experiment cell* is one simulated execution: an application, on a cluster
preset, with a consistency protocol, on a given number of nodes, at a given
workload.  A *protocol comparison* runs the same application/cluster/node
grid under several protocols and derives the quantity the paper reports: the
relative improvement of ``java_pf`` over ``java_ic``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.apps.base import create_app
from repro.apps.workloads import WorkloadPreset
from repro.cluster.presets import ClusterSpec, cluster_by_name
from repro.hyperion.runtime import ExecutionReport, HyperionRuntime, RuntimeConfig


def _resolve_cluster(cluster: Union[str, ClusterSpec]) -> ClusterSpec:
    if isinstance(cluster, ClusterSpec):
        return cluster
    return cluster_by_name(cluster)


def _resolve_workload(app_name: str, workload) -> object:
    if workload is None:
        return WorkloadPreset.bench().workload_for(app_name)
    if isinstance(workload, str):
        return WorkloadPreset.by_name(workload).workload_for(app_name)
    if isinstance(workload, WorkloadPreset):
        return workload.workload_for(app_name)
    return workload


@dataclass(frozen=True)
class ExperimentCell:
    """Identity of one simulated execution."""

    app: str
    cluster: str
    protocol: str
    num_nodes: int

    def label(self) -> str:
        """Short display label (used by reports and benchmark names)."""
        return f"{self.app}/{self.cluster}/{self.protocol}/n{self.num_nodes}"


def run_cell(
    app_name: str,
    cluster: Union[str, ClusterSpec],
    protocol: str,
    num_nodes: int,
    workload=None,
    config: Optional[RuntimeConfig] = None,
    verify: bool = False,
) -> ExecutionReport:
    """Run one experiment cell and return its :class:`ExecutionReport`.

    ``workload`` may be a workload object, a :class:`WorkloadPreset`, a preset
    name (``"bench"``, ``"paper"``, ``"testing"``) or None (bench preset).
    With ``verify=True`` the application's correctness check runs on the
    result and a failure raises ``AssertionError``.
    """
    spec = _resolve_cluster(cluster)
    resolved = _resolve_workload(app_name, workload)
    base_config = config or RuntimeConfig()
    runtime_config = RuntimeConfig(**{**base_config.__dict__, "protocol": protocol})
    runtime = HyperionRuntime(spec, num_nodes=num_nodes, config=runtime_config)
    app = create_app(app_name)
    report = app.run(runtime, resolved)
    if verify and not app.verify(report.result, resolved):
        raise AssertionError(
            f"{app_name} produced an incorrect result under "
            f"{protocol} on {spec.name}/{num_nodes} nodes"
        )
    return report


@dataclass
class ProtocolComparison:
    """All protocol runs of one application on one cluster."""

    app: str
    cluster: str
    workload_name: str
    node_counts: List[int]
    protocols: List[str]
    reports: Dict[Tuple[str, int], ExecutionReport] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def report(self, protocol: str, num_nodes: int) -> ExecutionReport:
        """The report of one (protocol, node-count) cell."""
        return self.reports[(protocol, num_nodes)]

    def series(self, protocol: str) -> List[Tuple[int, float]]:
        """Execution-time series (nodes, seconds) for *protocol*."""
        return [
            (n, self.reports[(protocol, n)].execution_seconds) for n in self.node_counts
        ]

    def improvement_percent(self, num_nodes: int, baseline: str = "java_ic", candidate: str = "java_pf") -> float:
        """Relative improvement of *candidate* over *baseline* at *num_nodes*."""
        base = self.reports[(baseline, num_nodes)].execution_seconds
        cand = self.reports[(candidate, num_nodes)].execution_seconds
        if base <= 0:
            return 0.0
        return 100.0 * (base - cand) / base

    def improvements(self, baseline: str = "java_ic", candidate: str = "java_pf") -> Dict[int, float]:
        """Improvement per node count."""
        return {
            n: self.improvement_percent(n, baseline, candidate) for n in self.node_counts
        }

    def mean_improvement(self, baseline: str = "java_ic", candidate: str = "java_pf") -> float:
        """Average improvement across node counts (the paper's SCI summary)."""
        values = list(self.improvements(baseline, candidate).values())
        return sum(values) / len(values) if values else 0.0


def run_comparison(
    app_name: str,
    cluster: Union[str, ClusterSpec],
    node_counts: Optional[Sequence[int]] = None,
    workload=None,
    protocols: Iterable[str] = ("java_ic", "java_pf"),
    config: Optional[RuntimeConfig] = None,
    verify: bool = False,
) -> ProtocolComparison:
    """Run *app_name* on *cluster* for every (protocol, node-count) pair."""
    spec = _resolve_cluster(cluster)
    counts = list(node_counts) if node_counts is not None else spec.node_counts()
    protocol_list = list(protocols)
    workload_name = workload if isinstance(workload, str) else getattr(workload, "name", "custom")
    comparison = ProtocolComparison(
        app=app_name,
        cluster=spec.name,
        workload_name=str(workload_name),
        node_counts=counts,
        protocols=protocol_list,
    )
    for protocol in protocol_list:
        for n in counts:
            comparison.reports[(protocol, n)] = run_cell(
                app_name, spec, protocol, n, workload=workload, config=config, verify=verify
            )
    return comparison
