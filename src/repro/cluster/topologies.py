"""Named topology presets: cluster shapes beyond the paper's two switches.

The paper evaluates two single-switch platforms.  This module grows the
*shape* axis: each preset here is a full :class:`~repro.cluster.presets.ClusterSpec`
whose ``topology_factory`` builds one of the non-uniform topologies of
:mod:`repro.cluster.topology` over the paper platforms' machine and software
constants:

``myrinet2x8``
    Two 8-node Myrinet islands (the paper's Pentium Pro nodes) whose
    switches are joined by a Fast Ethernet backbone — the commodity
    "cluster of clusters" of the era.
``myrinet_grid``
    The scale-out of ``myrinet2x8``: up to 1024 Myrinet nodes as 8-node
    islands over the same Fast Ethernet backbone (at 16 nodes the partition
    is exactly ``myrinet2x8``'s).
``myrinet_tree``
    Sixteen Myrinet nodes under four leaf switches and a root switch; the
    inter-switch links are Myrinet with doubled wire latency (one extra
    switch traversal each way).
``sci_torus``
    The six SCI nodes cabled as a 2x3 bidirectional torus (SCI's native
    multi-dimensional topology) instead of the idealised crossbar.
``sci_ring``
    The six SCI nodes on the unidirectional ring SCI is physically cabled
    as.

Every preset is also registered as an ordinary cluster preset, so
``cluster_by_name("myrinet2x8")``, ``--cluster myrinet2x8`` and the result
cache all work unchanged; :func:`topology_preset_by_name` and the
``hyperion-sim topologies`` listing are the topology-centric views.  The
baseline single-switch presets (``myrinet``, ``sci``) are listed too so
sweeps can compare a shape against its flat reference.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable

from repro.cluster.network import NetworkSpec
from repro.cluster.presets import (
    ClusterSpec,
    myrinet_cluster,
    register_cluster,
    sci_cluster,
)
from repro.cluster.topology import (
    MultiClusterTopology,
    RingTopology,
    SwitchedTreeTopology,
    TorusTopology,
    Topology,
)

#: Era-appropriate TCP-over-Fast-Ethernet backbone: ~70 us one-way latency
#: through the IP stack and ~11 MB/s sustained of the nominal 12.5 MB/s.
FAST_ETHERNET = NetworkSpec(
    name="TCP/FastEthernet",
    latency_seconds=70e-6,
    bandwidth_bytes_per_second=11e6,
    send_overhead_seconds=10e-6,
    recv_overhead_seconds=10e-6,
)


# ---------------------------------------------------------------------------
# topology factories (module-level, so ClusterSpec stays picklable and the
# spec cache key — the factory's qualified name — stays stable)
# ---------------------------------------------------------------------------
def myrinet2x8_topology(num_nodes: int, network: NetworkSpec) -> Topology:
    """Two Myrinet islands over a Fast Ethernet backbone.

    The run's nodes are split evenly across the two islands (8 + 8 at the
    full 16), so the backbone is exercised at every run size >= 2 — the
    scheduler hands a job equal shares of both sub-clusters.
    """
    return MultiClusterTopology(
        num_nodes, network, num_islands=2, backbone=FAST_ETHERNET
    )


def myrinet_grid_topology(num_nodes: int, network: NetworkSpec) -> Topology:
    """A grid of 8-node Myrinet islands over a Fast Ethernet backbone.

    The thousand-node scale-out of ``myrinet2x8``: the physical island
    capacity is pinned at 8 nodes (``island_size``, not ``num_islands``), so
    the island count grows with the run — 2 islands at 16 nodes (exactly the
    ``myrinet2x8`` partition), 128 at the full 1024.
    """
    return MultiClusterTopology(
        num_nodes, network, island_size=8, backbone=FAST_ETHERNET
    )


def myrinet_tree_topology(num_nodes: int, network: NetworkSpec) -> Topology:
    """Four-node leaf switches under a root switch of doubled wire latency."""
    inter = replace(
        network,
        name=f"{network.name}/inter-switch",
        latency_seconds=network.latency_seconds * 2.0,
    )
    return SwitchedTreeTopology(num_nodes, network, leaf_size=4, inter_link=inter)


def sci_torus_topology(num_nodes: int, network: NetworkSpec) -> Topology:
    """Bidirectional torus on the most square grid for the node count."""
    return TorusTopology(num_nodes, network)


def sci_ring_topology(num_nodes: int, network: NetworkSpec) -> Topology:
    """Unidirectional SCI ring with hardware-forwarded intermediate hops."""
    return RingTopology(num_nodes, network)


# ---------------------------------------------------------------------------
# preset cluster factories
# ---------------------------------------------------------------------------
def myrinet2x8_cluster() -> ClusterSpec:
    """Sixteen Myrinet nodes as two 8-node islands over Fast Ethernet."""
    return replace(
        myrinet_cluster(),
        name="myrinet2x8",
        num_nodes=16,
        topology_factory=myrinet2x8_topology,
    )


def myrinet_grid_cluster() -> ClusterSpec:
    """1024 Myrinet nodes as 8-node islands over Fast Ethernet."""
    return replace(
        myrinet_cluster(),
        name="myrinet_grid",
        num_nodes=1024,
        topology_factory=myrinet_grid_topology,
    )


def myrinet_tree_cluster() -> ClusterSpec:
    """Sixteen Myrinet nodes under a two-tier switched tree."""
    return replace(
        myrinet_cluster(),
        name="myrinet_tree",
        num_nodes=16,
        topology_factory=myrinet_tree_topology,
    )


def sci_torus_cluster() -> ClusterSpec:
    """The six SCI nodes cabled as a 2x3 torus."""
    return replace(sci_cluster(), name="sci_torus", topology_factory=sci_torus_topology)


def sci_ring_cluster() -> ClusterSpec:
    """The six SCI nodes on a unidirectional ring."""
    return replace(sci_cluster(), name="sci_ring", topology_factory=sci_ring_topology)


# ---------------------------------------------------------------------------
# topology-preset registry (mirrors the protocol registry)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TopologyPreset:
    """One named cluster shape: a cluster factory plus its description."""

    name: str
    cluster_factory: Callable[[], ClusterSpec]
    description: str

    def cluster(self) -> ClusterSpec:
        """Build the preset's :class:`ClusterSpec`."""
        return self.cluster_factory()

    def topology(self) -> Topology:
        """Build the preset's topology at its full node count."""
        spec = self.cluster()
        return spec.topology_factory(spec.num_nodes, spec.network)


_PRESETS: dict[str, TopologyPreset] = {}


def register_topology_preset(
    preset: TopologyPreset, allow_override: bool = False, as_cluster: bool = True
) -> TopologyPreset:
    """Register *preset*; with ``as_cluster`` also as a cluster preset.

    Registering the name in the ordinary cluster registry is what makes
    ``--topology myrinet2x8`` and ``--cluster myrinet2x8`` interchangeable
    everywhere the harness resolves cluster names.
    """
    key = preset.name.lower()
    if key in _PRESETS and not allow_override:
        raise ValueError(f"topology preset {preset.name!r} is already registered")
    _PRESETS[key] = preset
    if as_cluster:
        register_cluster(key, preset.cluster_factory, allow_override=True)
    return preset


def unregister_topology_preset(name: str) -> bool:
    """Remove *name* from the preset registry; returns False if absent.

    The cluster-registry alias (if any) is left in place — cached results
    keyed through it stay resolvable.
    """
    return _PRESETS.pop(name.lower(), None) is not None


def topology_preset_by_name(name: str) -> TopologyPreset:
    """Look up a topology preset by name."""
    try:
        return _PRESETS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise KeyError(f"unknown topology preset {name!r}; available: {known}") from None


def available_topology_presets() -> list[str]:
    """Names of all registered topology presets, sorted."""
    return sorted(_PRESETS)


register_topology_preset(
    TopologyPreset(
        name="myrinet",
        cluster_factory=myrinet_cluster,
        description="single-switch crossbar baseline (the paper's Myrinet platform)",
    ),
    as_cluster=False,  # already a first-class cluster preset
)
register_topology_preset(
    TopologyPreset(
        name="sci",
        cluster_factory=sci_cluster,
        description="single-switch crossbar baseline (the paper's SCI platform)",
    ),
    as_cluster=False,
)
register_topology_preset(
    TopologyPreset(
        name="myrinet2x8",
        cluster_factory=myrinet2x8_cluster,
        description="two 8-node Myrinet islands joined by a Fast Ethernet backbone",
    )
)
register_topology_preset(
    TopologyPreset(
        name="myrinet_grid",
        cluster_factory=myrinet_grid_cluster,
        description="1024 Myrinet nodes as 8-node islands over Fast Ethernet",
    )
)
register_topology_preset(
    TopologyPreset(
        name="myrinet_tree",
        cluster_factory=myrinet_tree_cluster,
        description="16 Myrinet nodes under 4-node leaf switches and a root switch",
    )
)
register_topology_preset(
    TopologyPreset(
        name="sci_torus",
        cluster_factory=sci_torus_cluster,
        description="the 6 SCI nodes cabled as a 2x3 bidirectional torus",
    )
)
register_topology_preset(
    TopologyPreset(
        name="sci_ring",
        cluster_factory=sci_ring_cluster,
        description="the 6 SCI nodes on the unidirectional ring SCI is cabled as",
    )
)
