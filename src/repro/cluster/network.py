"""Interconnect model.

The paper uses two interconnects through PM2's generic communication layer:
BIP over Myrinet and SISCI over SCI.  Both are modelled with the classic
LogP-style linear model: a fixed one-way latency, a per-message software
overhead at the sender and receiver, and a bandwidth term proportional to the
message size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class NetworkSpec:
    """Linear-cost model of a cluster interconnect.

    Parameters
    ----------
    name:
        Interconnect name (e.g. ``"BIP/Myrinet"``).
    latency_seconds:
        One-way wire + NIC latency for a minimal message.
    bandwidth_bytes_per_second:
        Sustained point-to-point bandwidth.
    send_overhead_seconds / recv_overhead_seconds:
        Host software overhead per message at the sender / receiver (the cost
        of the PM2 communication layer, independent of size).
    """

    name: str
    latency_seconds: float
    bandwidth_bytes_per_second: float
    send_overhead_seconds: float = 2e-6
    recv_overhead_seconds: float = 2e-6

    def __post_init__(self) -> None:
        check_non_negative("latency_seconds", self.latency_seconds)
        check_positive("bandwidth_bytes_per_second", self.bandwidth_bytes_per_second)
        check_non_negative("send_overhead_seconds", self.send_overhead_seconds)
        check_non_negative("recv_overhead_seconds", self.recv_overhead_seconds)

    # ------------------------------------------------------------------
    def one_way_time(self, nbytes: int = 0) -> float:
        """Time for one message of *nbytes* payload from send call to delivery."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        return (
            self.send_overhead_seconds
            + self.latency_seconds
            + nbytes / self.bandwidth_bytes_per_second
            + self.recv_overhead_seconds
        )

    def round_trip_time(self, request_bytes: int = 0, reply_bytes: int = 0) -> float:
        """Request/reply time excluding any service time at the responder."""
        return self.one_way_time(request_bytes) + self.one_way_time(reply_bytes)

    def transfer_seconds(self, nbytes: int) -> float:
        """Pure bandwidth term for *nbytes* (no latency, no overheads)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        return nbytes / self.bandwidth_bytes_per_second
