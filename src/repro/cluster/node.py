"""CPU model for a cluster node.

Execution time of compiled Java code is modelled as two components:

* a *cycle* component that scales with the CPU clock (register arithmetic,
  branches, the in-line locality checks of the ``java_ic`` protocol), and
* a *memory* component expressed directly in seconds (cache misses, DRAM
  accesses) that does **not** scale with the clock.

Splitting the two is what lets the model reproduce the paper's observation
that the in-line checks matter *less* on the faster 450 MHz SCI-cluster
machines: the checks shrink with the clock while the memory-bound part of the
applications does not (Section 4.3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one cluster machine.

    Parameters
    ----------
    name:
        Human-readable CPU name (e.g. ``"Pentium Pro 200MHz"``).
    frequency_hz:
        CPU clock frequency.
    memory_bytes:
        Physical memory; only used for sanity checks on workload sizes.
    cycles_per_flop:
        Average cycles for a double-precision floating-point operation in
        compiled (java2c + gcc -O6) code, including address arithmetic.
    cycles_per_int_op:
        Average cycles for an integer ALU operation in compiled code.
    dram_access_seconds:
        Time of a memory access that misses the cache hierarchy; charged by
        applications through their memory-time component.
    """

    name: str
    frequency_hz: float
    memory_bytes: int = 256 * 1024 * 1024
    cycles_per_flop: float = 3.0
    cycles_per_int_op: float = 1.0
    dram_access_seconds: float = 60e-9

    def __post_init__(self) -> None:
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("memory_bytes", self.memory_bytes)
        check_positive("cycles_per_flop", self.cycles_per_flop)
        check_positive("cycles_per_int_op", self.cycles_per_int_op)
        check_non_negative("dram_access_seconds", self.dram_access_seconds)

    # ------------------------------------------------------------------
    @property
    def cycle_time(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.frequency_hz

    def seconds_for_cycles(self, cycles: float) -> float:
        """Convert a cycle count into seconds on this machine."""
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles!r}")
        return cycles / self.frequency_hz

    def seconds_for_work(self, cycles: float = 0.0, mem_seconds: float = 0.0) -> float:
        """Combine a cycle component and a clock-independent memory component."""
        if mem_seconds < 0:
            raise ValueError(f"mem_seconds must be >= 0, got {mem_seconds!r}")
        return self.seconds_for_cycles(cycles) + mem_seconds

    def scaled(self, frequency_hz: float) -> "MachineSpec":
        """Return a copy of this spec with a different clock frequency."""
        return MachineSpec(
            name=f"{self.name} @ {frequency_hz / 1e6:.0f}MHz",
            frequency_hz=frequency_hz,
            memory_bytes=self.memory_bytes,
            cycles_per_flop=self.cycles_per_flop,
            cycles_per_int_op=self.cycles_per_int_op,
            dram_access_seconds=self.dram_access_seconds,
        )
