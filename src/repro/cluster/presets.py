"""Cluster presets mirroring the two platforms of the paper.

``myrinet_cluster()`` and ``sci_cluster()`` return :class:`ClusterSpec`
instances whose constants come from the paper where published (node counts,
CPU models and clock rates, page-fault costs of 22 us / 12 us) and from
era-appropriate published measurements otherwise (BIP and SISCI latency and
bandwidth, ``mprotect`` cost on Linux 2.2).  ``EXPERIMENTS.md`` documents the
sources and the ablation benchmarks sweep the estimated constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Callable

from repro.cluster.costs import CostModel, SoftwareCosts
from repro.cluster.network import NetworkSpec
from repro.cluster.node import MachineSpec
from repro.cluster.topology import CrossbarTopology, Topology
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ClusterSpec:
    """A named cluster: machine model, network model, software costs, size."""

    name: str
    num_nodes: int
    machine: MachineSpec
    network: NetworkSpec
    software: SoftwareCosts = field(default_factory=SoftwareCosts)
    page_size: int = 4096
    topology_factory: Callable[[int, NetworkSpec], Topology] = CrossbarTopology

    def __post_init__(self) -> None:
        check_positive("num_nodes", self.num_nodes)
        check_positive("page_size", self.page_size)

    # ------------------------------------------------------------------
    def cost_model(self) -> CostModel:
        """Build the :class:`CostModel` for this cluster."""
        return CostModel(
            machine=self.machine,
            network=self.network,
            software=self.software,
            page_size=self.page_size,
        )

    def topology(self, num_nodes: int | None = None) -> Topology:
        """Build the topology for *num_nodes* nodes (default: the full cluster)."""
        n = num_nodes if num_nodes is not None else self.num_nodes
        check_positive("num_nodes", n)
        if n > self.num_nodes:
            raise ValueError(
                f"cluster {self.name!r} has only {self.num_nodes} nodes, "
                f"cannot build a {n}-node topology"
            )
        return self.topology_factory(n, self.network)

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        """Return a copy restricted to *num_nodes* nodes."""
        check_positive("num_nodes", num_nodes)
        return replace(self, num_nodes=num_nodes)

    def with_software(self, **overrides) -> "ClusterSpec":
        """Return a copy with some software cost constants replaced."""
        return replace(self, software=self.software.with_overrides(**overrides))

    def node_counts(self, max_nodes: int | None = None) -> list[int]:
        """Node counts used on the figures' x-axis (1, 2, 4, ... up to size)."""
        limit = self.num_nodes if max_nodes is None else min(max_nodes, self.num_nodes)
        counts = [n for n in (1, 2, 3, 4, 6, 8, 10, 12, 16) if n <= limit]
        if limit not in counts:
            counts.append(limit)
        return counts


# ---------------------------------------------------------------------------
# the two paper platforms
# ---------------------------------------------------------------------------
def myrinet_cluster() -> ClusterSpec:
    """Twelve 200 MHz Pentium Pro nodes, Myrinet network, BIP protocol.

    Paper-published constants: 12 nodes, 200 MHz, page fault 22 us.
    Estimated constants: BIP one-way latency ~8 us and ~125 MB/s sustained
    bandwidth (Prylli & Tourancheau report ~5 us / 126 MB/s for raw BIP; the
    PM2 layer adds a couple of microseconds), ``mprotect`` ~6 us on a 200 MHz
    Pentium Pro running Linux 2.2.
    """
    machine = MachineSpec(
        name="Pentium Pro 200MHz",
        frequency_hz=200e6,
        memory_bytes=128 * 1024 * 1024,
        cycles_per_flop=3.0,
        cycles_per_int_op=1.0,
        dram_access_seconds=180e-9,
    )
    network = NetworkSpec(
        name="BIP/Myrinet",
        latency_seconds=8e-6,
        bandwidth_bytes_per_second=125e6,
        send_overhead_seconds=2.5e-6,
        recv_overhead_seconds=2.5e-6,
    )
    software = SoftwareCosts(
        inline_check_cycles=8.0,
        access_base_cycles=1.0,
        page_fault_seconds=22e-6,
        mprotect_seconds=6e-6,
        rpc_service_seconds=5e-6,
        monitor_local_cycles=60.0,
        monitor_remote_overhead_seconds=4e-6,
        thread_create_seconds=35e-6,
        cache_lookup_cycles=30.0,
        diff_per_byte_seconds=3e-9,
    )
    return ClusterSpec(
        name="myrinet",
        num_nodes=12,
        machine=machine,
        network=network,
        software=software,
    )


def sci_cluster() -> ClusterSpec:
    """Six 450 MHz Pentium II nodes, SCI network, SISCI protocol.

    Paper-published constants: 6 nodes, 450 MHz, page fault 12 us.
    Estimated constants: SISCI one-way latency ~4 us and ~80 MB/s sustained
    bandwidth for the PCI-SCI adapters of the period, ``mprotect`` ~3 us on a
    450 MHz Pentium II running Linux 2.2.
    """
    machine = MachineSpec(
        name="Pentium II 450MHz",
        frequency_hz=450e6,
        memory_bytes=256 * 1024 * 1024,
        cycles_per_flop=3.0,
        cycles_per_int_op=1.0,
        dram_access_seconds=140e-9,
    )
    network = NetworkSpec(
        name="SISCI/SCI",
        latency_seconds=4e-6,
        bandwidth_bytes_per_second=80e6,
        send_overhead_seconds=1.5e-6,
        recv_overhead_seconds=1.5e-6,
    )
    software = SoftwareCosts(
        inline_check_cycles=8.0,
        access_base_cycles=1.0,
        page_fault_seconds=12e-6,
        mprotect_seconds=3e-6,
        rpc_service_seconds=3e-6,
        monitor_local_cycles=60.0,
        monitor_remote_overhead_seconds=2.5e-6,
        thread_create_seconds=20e-6,
        cache_lookup_cycles=30.0,
        diff_per_byte_seconds=2e-9,
    )
    return ClusterSpec(
        name="sci",
        num_nodes=6,
        machine=machine,
        network=network,
        software=software,
    )


_REGISTRY: dict[str, Callable[[], ClusterSpec]] = {
    "myrinet": myrinet_cluster,
    "sci": sci_cluster,
}


def register_cluster(
    name: str, factory: Callable[[], ClusterSpec], allow_override: bool = False
) -> None:
    """Register a cluster preset factory under *name* (lower-cased).

    Mirrors the protocol registry: topology presets
    (:mod:`repro.cluster.topologies`) register their cluster variants here
    so every harness entry point that resolves cluster names accepts them.
    """
    key = name.lower()
    if key in _REGISTRY and not allow_override:
        raise ValueError(f"cluster {name!r} is already registered")
    _REGISTRY[key] = factory


def _ensure_topology_presets() -> None:
    # imported for its registration side effect (deferred: topologies.py
    # imports this module for ClusterSpec)
    from repro.cluster import topologies  # noqa: F401


def cluster_by_name(name: str) -> ClusterSpec:
    """Look up a preset by name (``"myrinet"``, ``"sci"``, ``"myrinet2x8"``, ...)."""
    _ensure_topology_presets()
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown cluster {name!r}; known presets: {known}") from None


def list_clusters() -> list[str]:
    """Names of the available cluster presets."""
    _ensure_topology_presets()
    return sorted(_REGISTRY)
