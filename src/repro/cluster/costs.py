"""Software-level cost constants and the combined :class:`CostModel`.

These constants are what the two protocols trade against each other:

* ``java_ic`` pays ``inline_check_cycles`` on **every** object access but
  never touches page protections;
* ``java_pf`` pays nothing per access but pays ``page_fault_seconds`` +
  ``mprotect_seconds`` (+ the page request itself) whenever a protected page
  is first touched, and ``mprotect_seconds`` per cached page on each monitor
  entry when protections are re-established.

The page-fault costs for the two paper platforms are published in the paper
itself (22 microseconds on the Myrinet-cluster machines, 12 microseconds on the
SCI-cluster machines); the remaining constants are era-appropriate estimates
documented in ``EXPERIMENTS.md`` and swept by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.network import NetworkSpec
from repro.cluster.node import MachineSpec
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class SoftwareCosts:
    """Per-node software cost constants (runtime + OS).

    Attributes
    ----------
    inline_check_cycles:
        Cost of one explicit object-locality check in ``java_ic`` (address
        masking, presence-table lookup, compare and branch).
    access_base_cycles:
        Cost of the ``get``/``put`` primitive itself, excluding detection;
        paid by **both** protocols for every access routed through the DSM.
    page_fault_seconds:
        Kernel trap + SIGSEGV dispatch + handler entry for ``java_pf``.
    mprotect_seconds:
        One ``mprotect`` system call (used by ``java_pf`` to protect a page on
        monitor entry and to unprotect it after a fetch).
    rpc_service_seconds:
        Software time to service one DSM request (page request, diff apply,
        monitor operation) at the receiving node.
    monitor_local_cycles:
        Uncontended monitor enter or exit on an object homed locally.
    monitor_remote_overhead_seconds:
        Extra software cost of a monitor operation on a remote object, on top
        of the network round trip.
    thread_create_seconds:
        Cost of creating one (local or remote) Marcel thread.
    cache_lookup_cycles:
        Cost of looking up the per-node object cache on a miss path.
    diff_per_byte_seconds:
        Cost of recording/applying one modified byte during
        ``updateMainMemory`` (twin/diff machinery).
    """

    inline_check_cycles: float = 8.0
    access_base_cycles: float = 1.0
    page_fault_seconds: float = 20e-6
    mprotect_seconds: float = 5e-6
    rpc_service_seconds: float = 4e-6
    monitor_local_cycles: float = 60.0
    monitor_remote_overhead_seconds: float = 3e-6
    thread_create_seconds: float = 30e-6
    cache_lookup_cycles: float = 30.0
    diff_per_byte_seconds: float = 2e-9

    def __post_init__(self) -> None:
        check_non_negative("inline_check_cycles", self.inline_check_cycles)
        check_non_negative("access_base_cycles", self.access_base_cycles)
        check_non_negative("page_fault_seconds", self.page_fault_seconds)
        check_non_negative("mprotect_seconds", self.mprotect_seconds)
        check_non_negative("rpc_service_seconds", self.rpc_service_seconds)
        check_non_negative("monitor_local_cycles", self.monitor_local_cycles)
        check_non_negative(
            "monitor_remote_overhead_seconds", self.monitor_remote_overhead_seconds
        )
        check_non_negative("thread_create_seconds", self.thread_create_seconds)
        check_non_negative("cache_lookup_cycles", self.cache_lookup_cycles)
        check_non_negative("diff_per_byte_seconds", self.diff_per_byte_seconds)

    def with_overrides(self, **kwargs) -> "SoftwareCosts":
        """Return a copy with some constants replaced (used by ablations)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class CostModel:
    """Everything needed to convert counted events into virtual seconds."""

    machine: MachineSpec
    network: NetworkSpec
    software: SoftwareCosts
    page_size: int = 4096

    def __post_init__(self) -> None:
        check_positive("page_size", self.page_size)

    # ------------------------------------------------------------------
    # per-access detection costs
    # ------------------------------------------------------------------
    def inline_check_seconds(self, count: int = 1) -> float:
        """Time for *count* explicit locality checks (``java_ic``)."""
        check_non_negative("count", count)
        return self.machine.seconds_for_cycles(self.software.inline_check_cycles * count)

    def access_base_seconds(self, count: int = 1) -> float:
        """Time for the access primitive itself, paid by both protocols."""
        check_non_negative("count", count)
        return self.machine.seconds_for_cycles(self.software.access_base_cycles * count)

    def page_fault_seconds(self) -> float:
        """Kernel cost of one page fault (``java_pf`` only)."""
        return self.software.page_fault_seconds

    def mprotect_seconds(self, pages: int = 1) -> float:
        """Cost of ``mprotect``-ing *pages* pages (one call per page)."""
        check_non_negative("pages", pages)
        return self.software.mprotect_seconds * pages

    def cache_miss_overhead_seconds(self) -> float:
        """Software overhead of taking the miss path in the object cache."""
        return self.machine.seconds_for_cycles(self.software.cache_lookup_cycles)

    # ------------------------------------------------------------------
    # communication costs
    # ------------------------------------------------------------------
    def page_request_seconds(self, pages: int = 1) -> float:
        """Round trip to the home node for *pages* consecutive pages.

        Request is a small control message; the reply carries the page data.
        Service time at the home node is included.
        """
        check_positive("pages", pages)
        payload = pages * self.page_size
        return (
            self.network.round_trip_time(64, payload)
            + self.software.rpc_service_seconds
        )

    def update_message_seconds(self, nbytes: int) -> float:
        """Cost (at the sender) of flushing *nbytes* of modifications home.

        Hyperion waits for the acknowledgement so that a subsequent monitor
        acquisition observes the update (Java consistency), hence a round
        trip; the diff-recording cost is proportional to the modified bytes.
        """
        check_non_negative("nbytes", nbytes)
        return (
            self.network.round_trip_time(nbytes + 64, 32)
            + self.software.rpc_service_seconds
            + self.software.diff_per_byte_seconds * nbytes
        )

    def rpc_round_trip_seconds(self, request_bytes: int = 64, reply_bytes: int = 64) -> float:
        """Generic control RPC round trip (monitor ops, barrier messages)."""
        return (
            self.network.round_trip_time(request_bytes, reply_bytes)
            + self.software.rpc_service_seconds
        )

    # ------------------------------------------------------------------
    # monitors / threads
    # ------------------------------------------------------------------
    def monitor_local_seconds(self) -> float:
        """Uncontended monitor enter/exit on a locally homed object."""
        return self.machine.seconds_for_cycles(self.software.monitor_local_cycles)

    def monitor_remote_seconds(self) -> float:
        """Monitor enter/exit on a remote object: RPC + software overhead."""
        return (
            self.rpc_round_trip_seconds()
            + self.software.monitor_remote_overhead_seconds
        )

    def thread_create_seconds(self, remote: bool) -> float:
        """Thread creation; remote creation adds an RPC to the target node."""
        base = self.software.thread_create_seconds
        if remote:
            base += self.rpc_round_trip_seconds(256, 32)
        return base

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable summary used by the harness reports."""
        mc, sw, net = self.machine, self.software, self.network
        lines = [
            f"machine           : {mc.name} ({mc.frequency_hz / 1e6:.0f} MHz)",
            f"network           : {net.name} "
            f"(latency {net.latency_seconds * 1e6:.1f} us, "
            f"bandwidth {net.bandwidth_bytes_per_second / 1e6:.0f} MB/s)",
            f"page size         : {self.page_size} B",
            f"in-line check     : {sw.inline_check_cycles:.0f} cycles "
            f"({self.inline_check_seconds() * 1e9:.0f} ns)",
            f"page fault        : {sw.page_fault_seconds * 1e6:.0f} us",
            f"mprotect          : {sw.mprotect_seconds * 1e6:.0f} us",
            f"page request RTT  : {self.page_request_seconds() * 1e6:.1f} us",
        ]
        return "\n".join(lines)


def make_cost_model(
    machine: MachineSpec,
    network: NetworkSpec,
    software: SoftwareCosts | None = None,
    page_size: int = 4096,
) -> CostModel:
    """Convenience factory mirroring :class:`CostModel`'s constructor."""
    return CostModel(
        machine=machine,
        network=network,
        software=software or SoftwareCosts(),
        page_size=page_size,
    )
