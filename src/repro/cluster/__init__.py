"""Hardware model of the two clusters used in the paper.

The paper evaluates Hyperion on two PC clusters:

* twelve 200 MHz Pentium Pro machines connected by Myrinet using the BIP
  protocol (page-fault cost 22 microseconds), and
* six 450 MHz Pentium II machines connected by SCI using the SISCI protocol
  (page-fault cost 12 microseconds).

Neither the machines nor the interconnects exist any more, so this package
models them: a :class:`~repro.cluster.node.MachineSpec` describes the CPU, a
:class:`~repro.cluster.network.NetworkSpec` describes the interconnect, and a
:class:`~repro.cluster.costs.CostModel` bundles the software-level constants
(in-line check, page fault, ``mprotect``, RPC handling).  The two presets in
:mod:`~repro.cluster.presets` mirror the paper's platforms; every constant is
documented and overridable so the sensitivity of the conclusions to each
constant can be explored (benchmarks ``A1``/``A2`` in DESIGN.md).
"""

from repro.cluster.costs import CostModel, SoftwareCosts
from repro.cluster.network import NetworkSpec
from repro.cluster.node import MachineSpec
from repro.cluster.presets import (
    ClusterSpec,
    cluster_by_name,
    list_clusters,
    myrinet_cluster,
    register_cluster,
    sci_cluster,
)
from repro.cluster.topologies import (
    TopologyPreset,
    available_topology_presets,
    myrinet2x8_cluster,
    myrinet_tree_cluster,
    register_topology_preset,
    sci_ring_cluster,
    sci_torus_cluster,
    topology_preset_by_name,
)
from repro.cluster.topology import (
    CrossbarTopology,
    LinkSpec,
    MultiClusterTopology,
    RingTopology,
    SwitchedTreeTopology,
    Topology,
    TorusTopology,
    available_topologies,
    create_topology,
    register_topology,
    topology_by_name,
    unregister_topology,
)

__all__ = [
    "CostModel",
    "SoftwareCosts",
    "NetworkSpec",
    "MachineSpec",
    "ClusterSpec",
    "myrinet_cluster",
    "sci_cluster",
    "myrinet2x8_cluster",
    "myrinet_tree_cluster",
    "sci_torus_cluster",
    "sci_ring_cluster",
    "cluster_by_name",
    "register_cluster",
    "list_clusters",
    "Topology",
    "CrossbarTopology",
    "RingTopology",
    "TorusTopology",
    "SwitchedTreeTopology",
    "MultiClusterTopology",
    "LinkSpec",
    "register_topology",
    "unregister_topology",
    "topology_by_name",
    "available_topologies",
    "create_topology",
    "TopologyPreset",
    "register_topology_preset",
    "topology_preset_by_name",
    "available_topology_presets",
]
