"""Cluster topology.

Both paper clusters are single-switch networks, so the default topology is a
full crossbar with uniform point-to-point costs.  The abstraction exists so
that experiments with non-uniform topologies can be plugged in without
touching the DSM layers, and this module grows that promise into a real
family:

* :class:`CrossbarTopology` — the paper's single switch (one uniform hop);
* :class:`RingTopology` — a unidirectional SCI-style ring with cheap
  hardware-forwarded hops;
* :class:`TorusTopology` — a bidirectional 2-D torus (SCI's native
  multi-dimensional cabling), hop count is the wrap-around Manhattan
  distance;
* :class:`SwitchedTreeTopology` — two switch tiers (leaf switches joined by
  a root switch), where the inter-switch hop can carry its *own*
  :class:`~repro.cluster.network.NetworkSpec`;
* :class:`MultiClusterTopology` — N islands of one preset joined by a
  slower backbone link (e.g. two 8-node Myrinet islands over Fast
  Ethernet).

Heterogeneous paths are described with :class:`LinkSpec`: one hop class
(intra-switch, inter-switch, backbone/WAN) wrapping the ``NetworkSpec`` that
prices it.  :class:`LinkPathTopology` sums per-link wire times along the
path and pays the host software overheads once per endpoint, so a
single-link path degenerates exactly to ``NetworkSpec.one_way_time``.

Every topology partitions its nodes into *islands* (:meth:`Topology.island_of`):
the maximal groups whose pairwise traffic never crosses a slow inter-cluster
link.  Single-switch topologies have one island; the DSM layers use the
partition to split page-transfer traffic into intra- vs inter-cluster
counters and to keep page homes inside the accessor's island
(:class:`~repro.core.home_policy.LocalityAwareHomePolicy`).

Topologies are registered by kind in a registry mirroring the protocol
registry (:func:`register_topology` / :func:`topology_by_name` /
:func:`available_topologies`); :mod:`repro.cluster.topologies` builds the
named cluster presets (``myrinet2x8``, ``sci_torus``, ...) on top of it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.cluster.network import NetworkSpec
from repro.util.validation import check_positive


@dataclass(frozen=True)
class LinkSpec:
    """One hop class of a heterogeneous path: a name plus its network model.

    ``kind`` distinguishes the link tiers of a topology (``"intra-switch"``,
    ``"inter-switch"``, ``"backbone"``, ...); ``network`` prices it.  The
    *wire* component of a link (latency plus bandwidth term) is charged per
    traversed link, while the host software overheads of its network are
    charged only at the path endpoints — a store-and-forward switch does not
    re-run the PM2 communication layer.
    """

    kind: str
    network: NetworkSpec

    def wire_seconds(self, nbytes: int = 0) -> float:
        """Latency + bandwidth time of *nbytes* over this link (no overheads)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        net = self.network
        return net.latency_seconds + nbytes / net.bandwidth_bytes_per_second


class Topology(ABC):
    """Maps (source node, destination node) pairs to communication costs."""

    #: short kind identifier, mirroring ``ConsistencyProtocol.name``
    kind = "abstract"
    #: True when ``hops(i, j) == hops(j, i)`` for every pair; the
    #: unidirectional ring is the one built-in exception
    symmetric = True
    #: True when the price of a pair depends only on its hop count (and the
    #: payload size), so ``one_way_time`` may be memoised by ``(hops,
    #: nbytes)``.  Set on the built-in homogeneous kinds; subclasses whose
    #: ``extra_hop_seconds`` depends on the *pair* rather than the hop count
    #: must leave it False or the cache would conflate distinct prices.
    hop_uniform_pricing = False

    def __init__(self, num_nodes: int, network: NetworkSpec):
        check_positive("num_nodes", num_nodes)
        self.num_nodes = int(num_nodes)
        self.network = network
        #: memoised message prices; values are the float of the *exact*
        #: uncached expression (same summation order), so cache hits are
        #: bit-identical to cold calls.
        self._price_cache: dict = {}
        self._num_islands_cache: "int | None" = None

    def _check_pair(self, src: int, dst: int) -> None:
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ValueError(
                f"node pair ({src}, {dst}) out of range for {self.num_nodes} nodes"
            )

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Number of network hops between *src* and *dst* (0 when equal)."""

    # ------------------------------------------------------------------
    # per-hop pricing hook
    # ------------------------------------------------------------------
    def extra_hop_seconds(self, src: int, dst: int, hops: int) -> float:
        """Cost of the *hops - 1* extra hops beyond the first.

        The default charges one full base latency per extra hop (a
        store-and-forward switch).  Homogeneous topologies with cheaper
        forwarding (:class:`RingTopology`, :class:`TorusTopology`) override
        this hook — not :meth:`one_way_time` — so they price through the
        same skeleton.  :class:`LinkPathTopology` is the exception: its
        paths mix networks, so it replaces :meth:`one_way_time` wholesale
        with per-link pricing and this hook does not apply there.
        """
        return (hops - 1) * self.network.latency_seconds

    def one_way_time(self, src: int, dst: int, nbytes: int = 0) -> float:
        """Message time from *src* to *dst*; local messages cost nothing."""
        self._check_pair(src, dst)
        if src == dst:
            return 0.0
        hops = self.hops(src, dst)
        if self.hop_uniform_pricing:
            key = (hops, nbytes)
            cached = self._price_cache.get(key)
            if cached is None:
                cached = self.network.one_way_time(nbytes) + self.extra_hop_seconds(
                    src, dst, hops
                )
                self._price_cache[key] = cached
            return cached
        return self.network.one_way_time(nbytes) + self.extra_hop_seconds(src, dst, hops)

    def round_trip_time(self, src: int, dst: int, request_bytes: int = 0, reply_bytes: int = 0) -> float:
        """Request/reply time between *src* and *dst*."""
        return self.one_way_time(src, dst, request_bytes) + self.one_way_time(
            dst, src, reply_bytes
        )

    # ------------------------------------------------------------------
    # island partition (inter- vs intra-cluster traffic)
    # ------------------------------------------------------------------
    def island_of(self, node: int) -> int:
        """Island (sub-cluster) index of *node*; single-switch: always 0."""
        return 0

    @property
    def num_islands(self) -> int:
        """Number of islands this topology partitions its nodes into.

        Built-in kinds answer analytically (:meth:`_count_islands`); the
        base fallback still walks every node but does so once per instance,
        so repeated reads — the CLI listings, figure generators, per-fetch
        island splits — stop re-scanning O(num_nodes) sets.
        """
        cached = self._num_islands_cache
        if cached is None:
            cached = self._count_islands()
            self._num_islands_cache = cached
        return cached

    def _count_islands(self) -> int:
        """Count distinct islands; override with closed-form arithmetic."""
        return len({self.island_of(node) for node in range(self.num_nodes)})

    def same_island(self, src: int, dst: int) -> bool:
        """True when traffic between the pair never crosses an inter-cluster link."""
        return self.island_of(src) == self.island_of(dst)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable summary used by the CLI listings."""
        islands = self.num_islands
        island_part = f", {islands} island(s)" if islands > 1 else ""
        return f"{self.kind}: {self.num_nodes} node(s) on {self.network.name}{island_part}"


class CrossbarTopology(Topology):
    """Single switch: every distinct pair of nodes is one hop apart."""

    kind = "crossbar"
    hop_uniform_pricing = True

    def hops(self, src: int, dst: int) -> int:
        self._check_pair(src, dst)
        return 0 if src == dst else 1

    def _count_islands(self) -> int:
        return 1


class RingTopology(Topology):
    """Unidirectional ring (how SCI is physically cabled).

    Latency grows with the number of intermediate nodes traversed; SISCI
    hardware forwarding keeps the per-hop cost small, so the extra cost per
    hop is a fraction of the base latency.
    """

    kind = "ring"
    symmetric = False
    hop_uniform_pricing = True

    def __init__(self, num_nodes: int, network: NetworkSpec, per_hop_fraction: float = 0.15):
        super().__init__(num_nodes, network)
        if per_hop_fraction < 0:
            raise ValueError("per_hop_fraction must be >= 0")
        self.per_hop_fraction = per_hop_fraction

    def hops(self, src: int, dst: int) -> int:
        self._check_pair(src, dst)
        if src == dst:
            return 0
        return (dst - src) % self.num_nodes

    def extra_hop_seconds(self, src: int, dst: int, hops: int) -> float:
        return (hops - 1) * self.per_hop_fraction * self.network.latency_seconds

    def _count_islands(self) -> int:
        return 1


class TorusTopology(Topology):
    """Bidirectional 2-D torus; hop count is the wrap-around Manhattan distance.

    ``dims`` fixes the grid as (rows, cols); by default the node count is
    factored into the most square grid available (a prime count degenerates
    to a 1xN bidirectional ring).  Like the SCI ring, forwarding happens in
    hardware, so each extra hop costs a fraction of the base latency.
    """

    kind = "torus"
    hop_uniform_pricing = True

    def __init__(
        self,
        num_nodes: int,
        network: NetworkSpec,
        dims: "tuple[int, int] | None" = None,
        per_hop_fraction: float = 0.15,
    ):
        super().__init__(num_nodes, network)
        if per_hop_fraction < 0:
            raise ValueError("per_hop_fraction must be >= 0")
        self.per_hop_fraction = per_hop_fraction
        if dims is None:
            dims = self._square_dims(self.num_nodes)
        rows, cols = int(dims[0]), int(dims[1])
        if rows < 1 or cols < 1 or rows * cols != self.num_nodes:
            raise ValueError(
                f"dims {dims!r} do not tile {self.num_nodes} node(s)"
            )
        self.dims = (rows, cols)

    @staticmethod
    def _square_dims(num_nodes: int) -> "tuple[int, int]":
        """Most square (rows, cols) factorisation of *num_nodes*."""
        rows = 1
        candidate = 1
        while candidate * candidate <= num_nodes:
            if num_nodes % candidate == 0:
                rows = candidate
            candidate += 1
        return rows, num_nodes // rows

    def _coords(self, node: int) -> "tuple[int, int]":
        cols = self.dims[1]
        return node // cols, node % cols

    def hops(self, src: int, dst: int) -> int:
        self._check_pair(src, dst)
        if src == dst:
            return 0
        rows, cols = self.dims
        sr, sc = self._coords(src)
        dr, dc = self._coords(dst)
        row_delta = abs(sr - dr)
        col_delta = abs(sc - dc)
        return min(row_delta, rows - row_delta) + min(col_delta, cols - col_delta)

    def extra_hop_seconds(self, src: int, dst: int, hops: int) -> float:
        return (hops - 1) * self.per_hop_fraction * self.network.latency_seconds

    def _count_islands(self) -> int:
        return 1


class LinkPathTopology(Topology):
    """Base class for topologies whose paths traverse heterogeneous links.

    Subclasses describe the path of a pair as a sequence of
    :class:`LinkSpec`; the message time is the sum of the per-link wire
    times plus the host software overheads, paid once at each endpoint (the
    sender's on the first link, the receiver's on the last).  A single-link
    path therefore prices exactly like ``NetworkSpec.one_way_time`` on that
    link's network.
    """

    @abstractmethod
    def links(self, src: int, dst: int) -> Sequence[LinkSpec]:
        """The links a message from *src* to *dst* traverses (src != dst)."""

    def path_class(self, src: int, dst: int) -> "object | None":
        """Hashable key identifying the *link path* of a distinct pair.

        Two pairs with the same path class must traverse an identical link
        sequence, so their prices can share one cache slot.  ``None`` (the
        default) disables caching for subclasses whose paths are not
        classifiable.  The built-in subclasses key on whether the pair
        shares an island — the only thing their :meth:`links` inspect.
        """
        return None

    def hops(self, src: int, dst: int) -> int:
        self._check_pair(src, dst)
        if src == dst:
            return 0
        return len(self.links(src, dst))

    @staticmethod
    def _price_links(path: Sequence[LinkSpec], nbytes: int) -> float:
        """Sum the path's wire times plus the endpoint software overheads."""
        total = path[0].network.send_overhead_seconds
        for link in path:
            total += link.wire_seconds(nbytes)
        total += path[-1].network.recv_overhead_seconds
        return total

    def one_way_time(self, src: int, dst: int, nbytes: int = 0) -> float:
        self._check_pair(src, dst)
        if src == dst:
            return 0.0
        path_class = self.path_class(src, dst)
        if path_class is None:
            return self._price_links(self.links(src, dst), nbytes)
        key = (path_class, nbytes)
        cached = self._price_cache.get(key)
        if cached is None:
            cached = self._price_links(self.links(src, dst), nbytes)
            self._price_cache[key] = cached
        return cached


class SwitchedTreeTopology(LinkPathTopology):
    """Two-tier switched tree: leaf switches of *leaf_size* nodes under a root.

    Nodes on the same leaf switch are one intra-switch hop apart; any other
    pair goes up through its leaf switch, across the root switch and down
    again (three hops), where the inter-switch hop may carry its own —
    typically slower — network model.  Each leaf switch is one island.
    """

    kind = "tree"

    def __init__(
        self,
        num_nodes: int,
        network: NetworkSpec,
        leaf_size: int = 4,
        inter_link: "LinkSpec | NetworkSpec | None" = None,
    ):
        super().__init__(num_nodes, network)
        check_positive("leaf_size", leaf_size)
        self.leaf_size = int(leaf_size)
        self.intra_link = LinkSpec("intra-switch", network)
        if inter_link is None:
            inter_link = LinkSpec("inter-switch", network)
        elif isinstance(inter_link, NetworkSpec):
            inter_link = LinkSpec("inter-switch", inter_link)
        self.inter_link = inter_link
        self._island_by_node = tuple(
            node // self.leaf_size for node in range(self.num_nodes)
        )
        self._intra_path = (self.intra_link,)
        self._inter_path = (self.intra_link, self.inter_link, self.intra_link)

    def island_of(self, node: int) -> int:
        if 0 <= node < self.num_nodes:
            return self._island_by_node[node]
        return node // self.leaf_size

    def path_class(self, src: int, dst: int) -> bool:
        return self._island_by_node[src] == self._island_by_node[dst]

    def _count_islands(self) -> int:
        return -(-self.num_nodes // self.leaf_size)

    def links(self, src: int, dst: int) -> Sequence[LinkSpec]:
        if self.island_of(src) == self.island_of(dst):
            return self._intra_path
        return self._inter_path


class MultiClusterTopology(LinkPathTopology):
    """N islands of one cluster preset joined by a slower backbone link.

    Models the "grid of commodity clusters" platform the paper's platforms
    cannot express: e.g. two 8-node Myrinet islands whose switches are
    joined by Fast Ethernet.  Intra-island pairs pay one hop on the island
    network; inter-island pairs pay island hop + backbone hop + island hop.

    ``num_islands`` splits whatever node count the run uses contiguously
    into (at most) that many islands of ``ceil(num_nodes / num_islands)``
    nodes — the way a scheduler hands a job equal shares of each
    sub-cluster — so a 2-island preset exhibits inter-island traffic at
    every run size >= 2.  When the node count does not divide evenly the
    last island is smaller and may be empty (a 9-node run at
    ``num_islands=4`` yields three 3-node islands); the requested count is
    kept on ``num_islands_requested`` and :meth:`describe` reports the
    normalised effective count whenever the two differ.  Pass
    ``island_size`` instead to pin the physical island capacity.
    ``backbone=None`` derives a generic
    order-of-magnitude-slower backbone from the island network (10x
    latency, 1/10 bandwidth, 2x overheads).
    """

    kind = "multicluster"

    def __init__(
        self,
        num_nodes: int,
        network: NetworkSpec,
        island_size: "int | None" = None,
        backbone: "LinkSpec | NetworkSpec | None" = None,
        num_islands: "int | None" = None,
    ):
        super().__init__(num_nodes, network)
        if island_size is not None and num_islands is not None:
            raise ValueError("pass island_size or num_islands, not both")
        if island_size is None:
            islands = 2 if num_islands is None else int(num_islands)
            check_positive("num_islands", islands)
            self.num_islands_requested: "int | None" = islands
            island_size = max(1, -(-self.num_nodes // islands))
        else:
            self.num_islands_requested = None
        check_positive("island_size", island_size)
        self.island_size = int(island_size)
        self.intra_link = LinkSpec("intra-cluster", network)
        if backbone is None:
            backbone = self.default_backbone(network)
        if isinstance(backbone, NetworkSpec):
            backbone = LinkSpec("backbone", backbone)
        self.backbone_link = backbone
        self._island_by_node = tuple(
            node // self.island_size for node in range(self.num_nodes)
        )
        self._intra_path = (self.intra_link,)
        self._inter_path = (self.intra_link, self.backbone_link, self.intra_link)

    @staticmethod
    def default_backbone(network: NetworkSpec) -> NetworkSpec:
        """A generic backbone one order of magnitude slower than *network*."""
        return NetworkSpec(
            name=f"{network.name}/backbone",
            latency_seconds=network.latency_seconds * 10.0,
            bandwidth_bytes_per_second=network.bandwidth_bytes_per_second / 10.0,
            send_overhead_seconds=network.send_overhead_seconds * 2.0,
            recv_overhead_seconds=network.recv_overhead_seconds * 2.0,
        )

    def island_of(self, node: int) -> int:
        if 0 <= node < self.num_nodes:
            return self._island_by_node[node]
        return node // self.island_size

    def path_class(self, src: int, dst: int) -> bool:
        return self._island_by_node[src] == self._island_by_node[dst]

    def _count_islands(self) -> int:
        return -(-self.num_nodes // self.island_size)

    def links(self, src: int, dst: int) -> Sequence[LinkSpec]:
        if self.island_of(src) == self.island_of(dst):
            return self._intra_path
        return self._inter_path

    def describe(self) -> str:
        summary = super().describe()
        requested = self.num_islands_requested
        if requested is not None and requested != self.num_islands:
            summary += (
                f" (requested {requested} islands, normalised to {self.num_islands})"
            )
        return summary


# ---------------------------------------------------------------------------
# topology registry (mirrors the protocol registry)
# ---------------------------------------------------------------------------
#: factory signature shared with ``ClusterSpec.topology_factory``
TopologyFactory = Callable[[int, NetworkSpec], Topology]

_REGISTRY: dict[str, TopologyFactory] = {}


def register_topology(
    name: str, factory: TopologyFactory, allow_override: bool = False
) -> None:
    """Register a topology factory under *name* (lower-cased).

    The factory takes ``(num_nodes, network)`` — the
    ``ClusterSpec.topology_factory`` signature — so registered kinds plug
    straight into cluster presets.  Re-registering an existing name raises
    ``ValueError`` unless ``allow_override=True``.
    """
    key = name.lower()
    if key in _REGISTRY and not allow_override:
        raise ValueError(f"topology {name!r} is already registered")
    _REGISTRY[key] = factory


def unregister_topology(name: str) -> bool:
    """Remove *name* from the registry; returns False if it was not there."""
    return _REGISTRY.pop(name.lower(), None) is not None


def topology_by_name(name: str) -> TopologyFactory:
    """Look up a registered topology factory by name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown topology {name!r}; available: {known}") from None


def available_topologies() -> list[str]:
    """Names of all registered topology kinds."""
    return sorted(_REGISTRY)


def create_topology(name: str, num_nodes: int, network: NetworkSpec) -> Topology:
    """Instantiate the topology registered under *name*."""
    return topology_by_name(name)(num_nodes, network)


register_topology("crossbar", CrossbarTopology)
register_topology("ring", RingTopology)
register_topology("torus", TorusTopology)
register_topology("tree", SwitchedTreeTopology)
register_topology("multicluster", MultiClusterTopology)
