"""Cluster topology.

Both paper clusters are single-switch networks, so the default topology is a
full crossbar with uniform point-to-point costs.  The abstraction exists so
that experiments with non-uniform topologies (e.g. a two-switch Myrinet or an
SCI ring, which has hop-dependent latency) can be plugged in without touching
the DSM layers; :class:`RingTopology` models the latter.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cluster.network import NetworkSpec
from repro.util.validation import check_positive


class Topology(ABC):
    """Maps (source node, destination node) pairs to communication costs."""

    def __init__(self, num_nodes: int, network: NetworkSpec):
        check_positive("num_nodes", num_nodes)
        self.num_nodes = int(num_nodes)
        self.network = network

    def _check_pair(self, src: int, dst: int) -> None:
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ValueError(
                f"node pair ({src}, {dst}) out of range for {self.num_nodes} nodes"
            )

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Number of network hops between *src* and *dst* (0 when equal)."""

    def one_way_time(self, src: int, dst: int, nbytes: int = 0) -> float:
        """Message time from *src* to *dst*; local messages cost nothing."""
        self._check_pair(src, dst)
        if src == dst:
            return 0.0
        hops = self.hops(src, dst)
        return self.network.one_way_time(nbytes) + (hops - 1) * self.network.latency_seconds

    def round_trip_time(self, src: int, dst: int, request_bytes: int = 0, reply_bytes: int = 0) -> float:
        """Request/reply time between *src* and *dst*."""
        return self.one_way_time(src, dst, request_bytes) + self.one_way_time(
            dst, src, reply_bytes
        )


class CrossbarTopology(Topology):
    """Single switch: every distinct pair of nodes is one hop apart."""

    def hops(self, src: int, dst: int) -> int:
        self._check_pair(src, dst)
        return 0 if src == dst else 1


class RingTopology(Topology):
    """Unidirectional ring (how SCI is physically cabled).

    Latency grows with the number of intermediate nodes traversed; SISCI
    hardware forwarding keeps the per-hop cost small, so the extra cost per
    hop is a fraction of the base latency.
    """

    def __init__(self, num_nodes: int, network: NetworkSpec, per_hop_fraction: float = 0.15):
        super().__init__(num_nodes, network)
        if per_hop_fraction < 0:
            raise ValueError("per_hop_fraction must be >= 0")
        self.per_hop_fraction = per_hop_fraction

    def hops(self, src: int, dst: int) -> int:
        self._check_pair(src, dst)
        if src == dst:
            return 0
        return (dst - src) % self.num_nodes

    def one_way_time(self, src: int, dst: int, nbytes: int = 0) -> float:
        self._check_pair(src, dst)
        if src == dst:
            return 0.0
        hops = self.hops(src, dst)
        extra = (hops - 1) * self.per_hop_fraction * self.network.latency_seconds
        return self.network.one_way_time(nbytes) + extra
