"""The synthetic application: replaying generated access scripts.

:class:`SyntheticApplication` is the bridge between the scenario subsystem
and the rest of the harness: it is a normal
:class:`~repro.apps.base.Application`, so everything built for the paper
benchmarks — ``ExperimentSpec``, ``ExperimentMatrix``, ``Session``, the
result cache, the parallel executor, figures and the CLI — drives generated
scenarios without special cases.  Its ``main`` generates the pattern's
script (seeded by the workload), materialises the declared layout on the
distributed heap and replays one op sequence per worker thread, exactly like
``Application.main`` does for hand-written benchmark bodies.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.apps.base import Application
from repro.scenarios.script import AccessScript, materialise_layout, replay_thread

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.registry import ScenarioPattern

#: memoised generated scripts, keyed by (pattern key, workload, threads, nodes).
#: Scripts are pure functions of that key (generators are seeded by the
#: workload) and :class:`AccessScript` is a frozen dataclass, so sharing one
#: validated instance across repeated runs of the same spec is safe — and it
#: removes the generate+validate cost from every run after the first.
_SCRIPT_CACHE: dict[tuple, AccessScript] = {}


class SyntheticApplication(Application):
    """A generated scenario behaving like one of the paper benchmarks.

    Subclasses are created by :mod:`repro.scenarios.registry`, one per
    registered pattern, each carrying its ``pattern`` descriptor and a
    ``syn-*`` registry name.
    """

    name = "abstract-synthetic"
    #: the pattern descriptor (set by the registry on each subclass)
    pattern: "ScenarioPattern" = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    @classmethod
    def workload_from_preset(cls, preset) -> object:
        """Scale the pattern's workload like a paper app's preset entry.

        ``WorkloadPreset`` only carries the five paper workloads; scenarios
        map the preset's *scale name* (``bench`` / ``paper`` / ``testing``)
        onto their own preset classmethods instead, so
        ``ExperimentSpec(app="syn-...", workload="testing")`` resolves just
        like ``ExperimentSpec(app="pi", workload="testing")`` does.
        """
        return cls.pattern.workload_cls.for_scale(preset.name)

    # ------------------------------------------------------------------
    def build_script(self, workload, num_threads: int, num_nodes: int) -> AccessScript:
        """Generate and validate the scenario's script (pure, seeded).

        The result is memoised: the generators are deterministic in
        ``(workload, num_threads, num_nodes)`` and the script is immutable,
        so repeated runs of the same spec (sweeps, benchmark repetitions)
        reuse one already-validated instance.
        """
        key = (self.pattern.key, workload, num_threads, num_nodes)
        try:
            cached = _SCRIPT_CACHE.get(key)
        except TypeError:  # unhashable workload override — just regenerate
            return self.pattern.generate(workload, num_threads, num_nodes).validate()
        if cached is None:
            cached = self.pattern.generate(workload, num_threads, num_nodes).validate()
            _SCRIPT_CACHE[key] = cached
        return cached

    # ------------------------------------------------------------------
    def _worker(
        self, ctx, index: int, count: int, workload, script, entities, barrier
    ) -> Generator:
        """One worker thread: replay its op sequence."""
        executed = yield from replay_thread(
            ctx,
            script,
            index,
            entities,
            barrier,
            work_multiplier=workload.work_multiplier,
        )
        return executed

    def main(self, ctx, workload) -> Generator:
        """Generate the script, build the layout, spawn and join the workers."""
        runtime = ctx.runtime
        count = self.worker_count(ctx)
        script = self.build_script(workload, count, runtime.num_nodes)
        entities = materialise_layout(ctx, script)
        barrier = (
            runtime.create_barrier(count, name=f"{self.name}-barrier")
            if script.uses_barrier
            else None
        )
        threads = self.spawn_workers(
            ctx, self._worker, count, workload, script, entities, barrier
        )
        executed = yield from self.join_all(ctx, threads)
        return {
            "pattern": self.pattern.key,
            "ops_executed": int(sum(executed)),
            "ops_expected": script.op_count(),
            "threads": count,
        }

    # ------------------------------------------------------------------
    def verify(self, result, workload) -> bool:
        """Every scripted op must have executed, no more and no fewer."""
        if not isinstance(result, dict):
            return False
        return (
            result.get("ops_expected", -1) == result.get("ops_executed", -2)
            and result.get("ops_executed", 0) > 0
        )
