"""Pattern registry: scenarios as first-class, registered applications.

Each :class:`ScenarioPattern` bundles a generator with its workload class
and registers a dedicated :class:`~repro.scenarios.runner.SyntheticApplication`
subclass under ``syn-<pattern>`` in the ordinary application registry.  From
that point on the harness cannot tell a generated scenario from a paper
benchmark: ``available_apps()`` lists it, ``ExperimentSpec``/``run_cell``
run it, the result store caches it and ``ExperimentMatrix`` grids over it.

The public helpers (:func:`available_scenarios`, :func:`scenario_workload`,
:func:`scenario_parameters`) are what the CLI's ``scenario`` subcommand and
``describe`` section are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from collections.abc import Callable

from repro.apps.base import register_app
from repro.scenarios.patterns import (
    FalseSharingWorkload,
    HotLockWorkload,
    MigratoryWorkload,
    ProducerConsumerWorkload,
    ReadMostlyWorkload,
    ScenarioWorkload,
    StreamingWorkload,
    UniformWorkload,
    generate_false_sharing,
    generate_hot_lock,
    generate_migratory,
    generate_producer_consumer,
    generate_read_mostly,
    generate_streaming,
    generate_uniform,
)
from repro.scenarios.runner import SyntheticApplication
from repro.scenarios.script import AccessScript

#: registry-name prefix distinguishing scenarios from the paper benchmarks
SCENARIO_PREFIX = "syn-"


@dataclass(frozen=True)
class ScenarioPattern:
    """One registered sharing pattern."""

    #: short pattern key ("false-sharing", "migratory", ...)
    key: str
    #: the frozen workload dataclass parameterising the generator
    workload_cls: type[ScenarioWorkload]
    #: ``generate(workload, num_threads, num_nodes) -> AccessScript``
    generate: Callable[[ScenarioWorkload, int, int], AccessScript]
    #: one-line description for ``describe`` / ``scenario list``
    description: str

    @property
    def app_name(self) -> str:
        """Application-registry name (``syn-<key>``)."""
        return SCENARIO_PREFIX + self.key


_PATTERNS: dict[str, ScenarioPattern] = {}


def register_pattern(pattern: ScenarioPattern) -> type[SyntheticApplication]:
    """Register *pattern* and its application class; returns the class."""
    if pattern.key in _PATTERNS:
        raise ValueError(f"scenario pattern {pattern.key!r} is already registered")
    _PATTERNS[pattern.key] = pattern
    camel = "".join(part.capitalize() for part in pattern.key.split("-"))
    app_cls = type(
        f"Synthetic{camel}Application",
        (SyntheticApplication,),
        {
            "name": pattern.app_name,
            "pattern": pattern,
            "__doc__": pattern.description,
        },
    )
    return register_app(app_cls)


def _normalise(name: str) -> str:
    key = name.lower()
    if key.startswith(SCENARIO_PREFIX):
        key = key[len(SCENARIO_PREFIX):]
    return key


def get_pattern(name: str) -> ScenarioPattern:
    """Look a pattern up by key or registry name (``migratory``/``syn-migratory``)."""
    try:
        return _PATTERNS[_normalise(name)]
    except KeyError:
        known = ", ".join(sorted(_PATTERNS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def available_scenarios() -> list[str]:
    """Registry names of all scenarios (``syn-*``), sorted."""
    return sorted(p.app_name for p in _PATTERNS.values())


def scenario_patterns() -> dict[str, ScenarioPattern]:
    """All registered patterns keyed by pattern key (copy)."""
    return dict(_PATTERNS)


def scenario_workload(name: str, scale: str = "bench", **overrides) -> ScenarioWorkload:
    """Build a scenario workload at *scale* with field overrides applied.

    Overrides are validated twice: unknown names are rejected here with the
    pattern's own field list, and values re-run the dataclass's
    ``__post_init__`` checks through :func:`dataclasses.replace`.
    """
    pattern = get_pattern(name)
    workload = pattern.workload_cls.for_scale(scale)
    if overrides:
        known = {f.name for f in fields(pattern.workload_cls)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise KeyError(
                f"scenario {pattern.app_name!r} has no parameter(s) "
                f"{', '.join(unknown)}; known: {', '.join(sorted(known))}"
            )
        workload = replace(workload, **overrides)
    return workload


def scenario_parameters(name: str) -> dict[str, object]:
    """Parameter names and bench-scale defaults of one pattern."""
    pattern = get_pattern(name)
    bench = pattern.workload_cls.bench()
    return {f.name: getattr(bench, f.name) for f in fields(pattern.workload_cls)}


# ---------------------------------------------------------------------------
# the built-in pattern library
# ---------------------------------------------------------------------------
register_pattern(
    ScenarioPattern(
        key="read-mostly",
        workload_cls=ReadMostlyWorkload,
        generate=generate_read_mostly,
        description="shared tables read from every node, rarely written",
    )
)
register_pattern(
    ScenarioPattern(
        key="producer-consumer",
        workload_cls=ProducerConsumerWorkload,
        generate=generate_producer_consumer,
        description="lock-protected bounded-buffer hand-off between thread halves",
    )
)
register_pattern(
    ScenarioPattern(
        key="migratory",
        workload_cls=MigratoryWorkload,
        generate=generate_migratory,
        description="exclusive read-modify-write ownership rotating each phase",
    )
)
register_pattern(
    ScenarioPattern(
        key="false-sharing",
        workload_cls=FalseSharingWorkload,
        generate=generate_false_sharing,
        description="distinct per-thread fields packed onto one DSM page",
    )
)
register_pattern(
    ScenarioPattern(
        key="hot-lock",
        workload_cls=HotLockWorkload,
        generate=generate_hot_lock,
        description="every thread contending on one monitor around a tiny critical section",
    )
)
register_pattern(
    ScenarioPattern(
        key="uniform",
        workload_cls=UniformWorkload,
        generate=generate_uniform,
        description="uniform all-to-all accesses over one page-aligned array per node",
    )
)
register_pattern(
    ScenarioPattern(
        key="streaming",
        workload_cls=StreamingWorkload,
        generate=generate_streaming,
        description="chunked sequential array scans emitted as pre-grouped access runs",
    )
)
