"""The access-script IR and its interpreter.

A *scenario* is not hand-written application code but a deterministic,
seeded **access script**: a declared object layout plus one compact
operation sequence per thread.  The generators in
:mod:`repro.scenarios.patterns` emit scripts; the interpreter here replays
them through the Hyperion runtime exactly like a translated Java program —
every ``get``/``put`` goes through the Table 2 memory primitives (and
therefore through the configured consistency protocol), monitors and
barriers carry their usual Java-consistency side effects.

Operations are plain tuples, keyed by their first element:

==========================  =================================================
``("get", o, s)``            read slot *s* of layout object *o*
``("put", o, s, v)``         write value *v* to slot *s* of layout object *o*
``("get_run", o, ss)``       read each slot of tuple *ss* in order (batched)
``("put_run", o, ss, vs)``   write ``vs[k]`` to slot ``ss[k]`` in order
``("lock", o)``              enter the monitor of layout object *o*
``("unlock", o)``            exit the monitor of layout object *o*
``("barrier",)``             wait at the scenario-wide barrier (all workers)
``("compute", c)``           charge *c* CPU cycles of application compute
==========================  =================================================

The two ``*_run`` forms are pre-grouped run-length encodings of adjacent
scalar accesses to one object: semantically identical to the equivalent
``get``/``put`` sequence (the determinism suite pins this), but replayed
through the bulk context primitives so the interpreter doesn't pay the
per-element dispatch.  The interpreter also discovers such runs on the fly
(:func:`coalesce_ops`), so generators may emit either form; batches always
end at ``lock``/``unlock``/``barrier``/``compute`` boundaries because runs
only span *adjacent* accesses to a single object.

Keeping the IR this small is deliberate: a script is pure data (hashable
tuples of tuples), so the same seed always produces the same script, and a
script can be inspected, counted and serialised without running it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Generator, Sequence

from repro.util.validation import check_non_negative

#: operation tags understood by the interpreter
OP_GET = "get"
OP_PUT = "put"
OP_GET_RUN = "get_run"
OP_PUT_RUN = "put_run"
OP_LOCK = "lock"
OP_UNLOCK = "unlock"
OP_BARRIER = "barrier"
OP_COMPUTE = "compute"

#: tag -> expected tuple arity (including the tag itself)
_OP_ARITY: dict[str, int] = {
    OP_GET: 3,
    OP_PUT: 4,
    OP_GET_RUN: 3,
    OP_PUT_RUN: 4,
    OP_LOCK: 2,
    OP_UNLOCK: 2,
    OP_BARRIER: 1,
    OP_COMPUTE: 2,
}

#: one IR operation (see module docstring for the forms)
Op = tuple


@dataclass(frozen=True)
class ObjectDecl:
    """Declaration of one shared entity in a scenario's object layout.

    ``kind`` is ``"object"`` (a scalar :class:`~repro.hyperion.objects.JavaObject`
    with ``num_fields`` 8-byte field slots) or ``"array"`` (a
    :class:`~repro.hyperion.objects.JavaArray` of ``length`` elements).
    ``home_node`` is taken modulo the runtime's node count at materialisation
    time, so one layout works on any cluster size.
    """

    name: str
    kind: str = "object"
    home_node: int = 0
    #: number of field slots ("object" kind)
    num_fields: int = 1
    #: element type and length ("array" kind)
    element_type: str = "long"
    length: int = 0
    #: allocate on a page boundary (avoids incidental page sharing)
    page_aligned: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("object declaration needs a non-empty name")
        if self.kind not in ("object", "array"):
            raise ValueError(f"unknown layout kind {self.kind!r}")
        check_non_negative("home_node", self.home_node)
        if self.kind == "object" and self.num_fields < 1:
            raise ValueError(f"object {self.name!r} needs at least one field")
        if self.kind == "array" and self.length < 1:
            raise ValueError(f"array {self.name!r} needs at least one element")

    @property
    def num_slots(self) -> int:
        """Addressable slots of the declared entity."""
        return self.num_fields if self.kind == "object" else self.length


@dataclass(frozen=True)
class AccessScript:
    """A deterministic shared-memory scenario: layout plus per-thread ops."""

    layout: tuple[ObjectDecl, ...]
    #: one operation sequence per worker thread
    threads: tuple[tuple[Op, ...], ...]

    # ------------------------------------------------------------------
    def validate(self) -> "AccessScript":
        """Check every op refers to a declared object and an in-range slot.

        Runs once per generated script, but over *every* op of every
        thread — for bulk-heavy patterns that is tens of thousands of slot
        checks, so the loop binds the per-object slot counts once (instead
        of re-reading the ``num_slots`` property per check) and bounds-checks
        run ops with C-speed ``min``/``max``, only walking a run's slots to
        name the offender after a violation is detected.
        """
        if not self.layout:
            raise ValueError("a script needs at least one declared object")
        if not self.threads:
            raise ValueError("a script needs at least one thread")
        slot_counts = [decl.num_slots for decl in self.layout]
        num_objects = len(self.layout)
        arity_of = _OP_ARITY.get
        for tid, ops in enumerate(self.threads):
            depth = 0
            for op in ops:
                tag = op[0]
                arity = arity_of(tag)
                if arity is None:
                    raise ValueError(f"thread {tid}: unknown op tag {tag!r}")
                if len(op) != arity:
                    raise ValueError(
                        f"thread {tid}: op {op!r} has {len(op)} elements, "
                        f"expected {arity}"
                    )
                if tag == OP_GET or tag == OP_PUT:
                    obj = op[1]
                    if not 0 <= obj < num_objects:
                        raise ValueError(
                            f"thread {tid}: op {op!r} references object {obj}, "
                            f"layout has {num_objects}"
                        )
                    slot = op[2]
                    if not 0 <= slot < slot_counts[obj]:
                        decl = self.layout[obj]
                        raise ValueError(
                            f"thread {tid}: op {op!r} addresses slot {slot} of "
                            f"{decl.name!r} ({decl.num_slots} slots)"
                        )
                elif tag == OP_GET_RUN or tag == OP_PUT_RUN:
                    obj = op[1]
                    if not 0 <= obj < num_objects:
                        raise ValueError(
                            f"thread {tid}: op {op!r} references object {obj}, "
                            f"layout has {num_objects}"
                        )
                    slots = op[2]
                    if not slots:
                        raise ValueError(f"thread {tid}: empty run op {op!r}")
                    limit = slot_counts[obj]
                    if min(slots) < 0 or max(slots) >= limit:
                        decl = self.layout[obj]
                        for slot in slots:
                            if not 0 <= slot < limit:
                                raise ValueError(
                                    f"thread {tid}: run op {op!r} addresses slot "
                                    f"{slot} of {decl.name!r} ({decl.num_slots} slots)"
                                )
                    if tag == OP_PUT_RUN and len(op[3]) != len(slots):
                        raise ValueError(
                            f"thread {tid}: put_run op has {len(slots)} slots but "
                            f"{len(op[3])} values"
                        )
                elif tag == OP_LOCK or tag == OP_UNLOCK:
                    obj = op[1]
                    if not 0 <= obj < num_objects:
                        raise ValueError(
                            f"thread {tid}: op {op!r} references object {obj}, "
                            f"layout has {num_objects}"
                        )
                    if tag == OP_LOCK:
                        depth += 1
                    else:
                        depth -= 1
                        if depth < 0:
                            raise ValueError(f"thread {tid}: unlock without a lock")
                elif tag == OP_COMPUTE and op[1] < 0:
                    raise ValueError(f"thread {tid}: negative compute {op!r}")
            if depth != 0:
                raise ValueError(f"thread {tid}: {depth} unmatched lock(s)")
        return self

    # ------------------------------------------------------------------
    @property
    def num_threads(self) -> int:
        """Worker threads the script drives."""
        return len(self.threads)

    @property
    def uses_barrier(self) -> bool:
        """True when any thread waits at the scenario barrier."""
        return any(op[0] == OP_BARRIER for ops in self.threads for op in ops)

    def op_count(self) -> int:
        """Total operations across all threads."""
        return sum(len(ops) for ops in self.threads)

    def counts_by_kind(self) -> dict[str, int]:
        """Histogram of op tags (inspection / tests / `scenario list`)."""
        counts: dict[str, int] = {}
        for ops in self.threads:
            for op in ops:
                counts[op[0]] = counts.get(op[0], 0) + 1
        return counts


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------
@dataclass
class ScriptBuilder:
    """Mutable accumulator the pattern generators write into."""

    num_threads: int
    layout: list[ObjectDecl] = field(default_factory=list)
    _ops: list[list[Op]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {self.num_threads}")
        self._ops = [[] for _ in range(self.num_threads)]

    # -- layout ---------------------------------------------------------------
    def declare(self, decl: ObjectDecl) -> int:
        """Add *decl* to the layout and return its object index."""
        self.layout.append(decl)
        return len(self.layout) - 1

    def shared_object(self, name: str, num_fields: int = 1, home_node: int = 0) -> int:
        """Declare a scalar object (monitor target / field container)."""
        return self.declare(
            ObjectDecl(name=name, kind="object", num_fields=num_fields, home_node=home_node)
        )

    def shared_array(
        self,
        name: str,
        length: int,
        home_node: int = 0,
        element_type: str = "long",
        page_aligned: bool = True,
    ) -> int:
        """Declare an array (page-aligned by default, like the benchmarks)."""
        return self.declare(
            ObjectDecl(
                name=name,
                kind="array",
                home_node=home_node,
                element_type=element_type,
                length=length,
                page_aligned=page_aligned,
            )
        )

    # -- per-thread ops ---------------------------------------------------------
    def get(self, thread: int, obj: int, slot: int) -> None:
        self._ops[thread].append((OP_GET, obj, slot))

    def put(self, thread: int, obj: int, slot: int, value) -> None:
        self._ops[thread].append((OP_PUT, obj, slot, value))

    def get_run(self, thread: int, obj: int, slots: Sequence[int]) -> None:
        """Append one pre-grouped batched read of *slots* (in order)."""
        self._ops[thread].append((OP_GET_RUN, obj, tuple(slots)))

    def put_run(self, thread: int, obj: int, slots: Sequence[int], values: Sequence) -> None:
        """Append one pre-grouped batched write of *values* to *slots*."""
        self._ops[thread].append((OP_PUT_RUN, obj, tuple(slots), tuple(values)))

    def lock(self, thread: int, obj: int) -> None:
        self._ops[thread].append((OP_LOCK, obj))

    def unlock(self, thread: int, obj: int) -> None:
        self._ops[thread].append((OP_UNLOCK, obj))

    def compute(self, thread: int, cycles: float) -> None:
        self._ops[thread].append((OP_COMPUTE, float(cycles)))

    def barrier_all(self) -> None:
        """Append a barrier op to *every* thread (all must participate)."""
        for ops in self._ops:
            ops.append((OP_BARRIER,))

    # ------------------------------------------------------------------
    def build(self) -> AccessScript:
        """Freeze into a validated :class:`AccessScript`."""
        script = AccessScript(
            layout=tuple(self.layout),
            threads=tuple(tuple(ops) for ops in self._ops),
        )
        return script.validate()


# ---------------------------------------------------------------------------
# interpreter
# ---------------------------------------------------------------------------
def materialise_layout(ctx, script: AccessScript) -> list:
    """Allocate the script's declared objects through the runtime heap.

    Home nodes are taken modulo the runtime's node count so the same script
    runs on any cluster size.  Returns the entities in declaration order.
    """
    num_nodes = ctx.runtime.num_nodes
    entities = []
    for decl in script.layout:
        home = decl.home_node % num_nodes
        if decl.kind == "array":
            entities.append(
                ctx.new_array(
                    decl.element_type,
                    decl.length,
                    home_node=home,
                    page_aligned=decl.page_aligned,
                )
            )
        else:
            jclass = ctx.runtime.java_class(
                decl.name, [f"f{i}" for i in range(decl.num_fields)]
            )
            entities.append(ctx.new_object(jclass, home_node=home))
    return entities


def coalesce_ops(ops: Sequence[Op]) -> tuple[tuple[Op, int], ...]:
    """Group adjacent homogeneous scalar accesses into run steps.

    Returns ``(op, nops)`` pairs: a discovered run of *k* adjacent scalar
    ``get``/``put`` ops on one object becomes a single ``get_run``/``put_run``
    step with ``nops == k`` (each scalar op still counts as executed); every
    other op — including pre-grouped run ops, which count as one op — passes
    through with ``nops == 1``.  Synchronisation and compute ops are never
    merged over, so a batch always flushes at ``lock``/``unlock``/``barrier``
    boundaries.
    """
    steps: list[tuple[Op, int]] = []
    i = 0
    n = len(ops)
    while i < n:
        op = ops[i]
        tag = op[0]
        if tag == OP_GET or tag == OP_PUT:
            obj = op[1]
            j = i + 1
            while j < n and ops[j][0] == tag and ops[j][1] == obj:
                j += 1
            if j - i > 1:
                slots = tuple(ops[k][2] for k in range(i, j))
                if tag == OP_GET:
                    steps.append(((OP_GET_RUN, obj, slots), j - i))
                else:
                    values = tuple(ops[k][3] for k in range(i, j))
                    steps.append(((OP_PUT_RUN, obj, slots, values), j - i))
                i = j
                continue
        steps.append((op, 1))
        i += 1
    return tuple(steps)


def replay_thread(
    ctx,
    script: AccessScript,
    thread_index: int,
    entities: Sequence,
    barrier,
    work_multiplier: float = 1.0,
) -> Generator:
    """Replay one thread's op sequence against materialised *entities*.

    ``work_multiplier`` mirrors the paper-app workloads: compute cycles are
    scaled by it, and each scripted access additionally accounts
    ``round(work_multiplier) - 1`` detection-only accesses
    (:meth:`~repro.hyperion.threads.JavaThreadContext.account_accesses`), so
    a scaled-down script keeps the paper-scale check/fault balance without
    moving more data.  Returns the number of ops executed.

    Adjacent scalar accesses to one object are coalesced up front
    (:func:`coalesce_ops`) and replayed through the bulk context primitives
    ``get_run``/``put_run`` — including the per-access extra accounting, which
    the memory layer interleaves exactly as the scalar path would.  The
    result is pinned byte-identical to the unbatched replay by the
    determinism suite.
    """
    extra = max(0, int(round(work_multiplier)) - 1)
    executed = 0
    for op, nops in coalesce_ops(script.threads[thread_index]):
        tag = op[0]
        if tag == OP_GET_RUN:
            ctx.get_run(entities[op[1]], op[2], extra=extra)
        elif tag == OP_PUT_RUN:
            ctx.put_run(entities[op[1]], op[2], op[3], extra=extra)
        elif tag == OP_GET:
            ctx.get(entities[op[1]], op[2])
            if extra:
                ctx.account_accesses(
                    entities[op[1]], extra, lo=op[2], hi=op[2] + 1, write=False
                )
        elif tag == OP_PUT:
            ctx.put(entities[op[1]], op[2], op[3])
            if extra:
                ctx.account_accesses(
                    entities[op[1]], extra, lo=op[2], hi=op[2] + 1, write=True
                )
        elif tag == OP_COMPUTE:
            ctx.compute(cycles=op[1] * work_multiplier)
        elif tag == OP_LOCK:
            yield from ctx.monitor_enter(entities[op[1]])
        elif tag == OP_UNLOCK:
            yield from ctx.monitor_exit(entities[op[1]])
        elif tag == OP_BARRIER:
            yield from ctx.barrier(barrier)
        else:  # pragma: no cover - build() validates tags
            raise ValueError(f"unknown op tag {tag!r}")
        executed += nops
    return executed
