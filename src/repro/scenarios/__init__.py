"""Synthetic scenario subsystem: seeded DSM sharing-pattern generators.

The five paper benchmarks freeze the workload space to five access
patterns.  This package opens it up: parameterised, seeded generators
(:mod:`~repro.scenarios.patterns`) emit deterministic access scripts
(:mod:`~repro.scenarios.script`) that a generic
:class:`~repro.scenarios.runner.SyntheticApplication` replays through the
Hyperion runtime, and the registry (:mod:`~repro.scenarios.registry`)
publishes each pattern as a normal ``syn-*`` application so the whole
harness — specs, matrices, sessions, caches, executors, figures, the CLI —
treats generated scenarios as peers of the paper apps.

Determinism contract (inherited from the harness): a scenario cell is a
pure function of its :class:`~repro.harness.spec.ExperimentSpec` — the same
workload seed produces the same script and therefore a byte-identical
``ExecutionReport.to_dict()``, serial or parallel, cached or fresh.
"""

from repro.scenarios.patterns import (
    FalseSharingWorkload,
    HotLockWorkload,
    MigratoryWorkload,
    ProducerConsumerWorkload,
    ReadMostlyWorkload,
    ScenarioWorkload,
    UniformWorkload,
)
from repro.scenarios.registry import (
    SCENARIO_PREFIX,
    ScenarioPattern,
    available_scenarios,
    get_pattern,
    register_pattern,
    scenario_parameters,
    scenario_patterns,
    scenario_workload,
)
from repro.scenarios.runner import SyntheticApplication
from repro.scenarios.script import (
    AccessScript,
    ObjectDecl,
    ScriptBuilder,
    materialise_layout,
    replay_thread,
)

__all__ = [
    "AccessScript",
    "ObjectDecl",
    "ScriptBuilder",
    "ScenarioPattern",
    "ScenarioWorkload",
    "ReadMostlyWorkload",
    "ProducerConsumerWorkload",
    "MigratoryWorkload",
    "FalseSharingWorkload",
    "HotLockWorkload",
    "UniformWorkload",
    "SyntheticApplication",
    "SCENARIO_PREFIX",
    "available_scenarios",
    "get_pattern",
    "register_pattern",
    "scenario_parameters",
    "scenario_patterns",
    "scenario_workload",
    "materialise_layout",
    "replay_thread",
]
