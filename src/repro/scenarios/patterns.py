"""Seeded sharing-pattern generators and their workload dataclasses.

Each pattern is a parameterised generator producing an
:class:`~repro.scenarios.script.AccessScript` from a frozen, seeded workload
dataclass — the synthetic counterpart of :mod:`repro.apps.workloads`.  The
patterns cover the classic DSM stress axes the five paper benchmarks never
exercise:

* **read-mostly** — shared data read from everywhere, rarely written;
* **producer-consumer** — lock-protected bounded-buffer hand-off;
* **migratory** — exclusive read-modify-write ownership rotating between
  threads phase by phase;
* **false-sharing** — threads writing *distinct* fields that live on the
  *same* page (invisible to ``java_ic``'s object-level checks, pathological
  for ``java_pf``'s page-granularity faults);
* **hot-lock** — every thread hammering one monitor around a tiny critical
  section;
* **uniform** — all-to-all accesses spread evenly over per-node arrays.

Generation is pure: ``random.Random(workload.seed)`` drives every choice, so
one ``(workload, num_threads, num_nodes)`` triple always yields the same
script, which is what makes scenario cells cacheable and executor-agnostic
(same seed ⇒ byte-identical ``ExecutionReport.to_dict()``).

Every workload carries a ``work_multiplier`` with the same contract as the
paper apps: compute cycles and *accounted* per-element accesses scale by it
while the data actually moved stays at script size, preserving the
computation-to-communication balance when a script is scaled down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.scenarios.script import AccessScript, ScriptBuilder
from repro.util.validation import check_non_negative, check_positive

#: cycles charged per "think" step between accesses, before work_multiplier
THINK_CYCLES = 120.0


@dataclass(frozen=True)
class ScenarioWorkload:
    """Base of every synthetic workload: a seed and the cost multiplier."""

    #: RNG seed driving script generation (the determinism contract's input)
    seed: int = 7
    #: paper-scale elements represented by each scripted op (costs only)
    work_multiplier: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("seed", self.seed)
        check_positive("work_multiplier", self.work_multiplier)

    # ------------------------------------------------------------------
    @classmethod
    def bench(cls) -> "ScenarioWorkload":
        """Benchmark-harness scale (default parameters)."""
        return cls()

    @classmethod
    def paper(cls) -> "ScenarioWorkload":
        """Paper-style scale: same script, paper-scale cost accounting."""
        return cls(work_multiplier=200.0)

    @classmethod
    def testing(cls) -> "ScenarioWorkload":
        """Tiny scale for the unit tests (subclasses shrink their sizes)."""
        return cls()

    @classmethod
    def for_scale(cls, scale: str) -> "ScenarioWorkload":
        """Preset instance by scale name (``bench`` / ``paper`` / ``testing``)."""
        presets = {"bench": cls.bench, "paper": cls.paper, "testing": cls.testing}
        try:
            return presets[scale.lower()]()
        except KeyError:
            known = ", ".join(sorted(presets))
            raise KeyError(f"unknown workload scale {scale!r}; known: {known}") from None


# ---------------------------------------------------------------------------
# read-mostly
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ReadMostlyWorkload(ScenarioWorkload):
    """Shared tables read from every node, occasionally updated."""

    #: shared page-aligned arrays, homed round-robin over the nodes
    objects: int = 8
    #: array length (slots) of each shared table
    slots: int = 128
    #: accesses issued by each thread
    ops_per_thread: int = 240
    #: fraction of accesses that are writes
    write_fraction: float = 0.05
    #: a lock/unlock pair (flush + invalidate) every this many accesses
    sync_period: int = 60

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("objects", self.objects)
        check_positive("slots", self.slots)
        check_positive("ops_per_thread", self.ops_per_thread)
        check_positive("sync_period", self.sync_period)
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(f"write_fraction must be in [0, 1], got {self.write_fraction}")

    @classmethod
    def paper(cls) -> "ReadMostlyWorkload":
        return cls(objects=16, slots=512, ops_per_thread=960, work_multiplier=50.0)

    @classmethod
    def testing(cls) -> "ReadMostlyWorkload":
        return cls(objects=3, slots=32, ops_per_thread=40, sync_period=16)


def generate_read_mostly(
    workload: ReadMostlyWorkload, num_threads: int, num_nodes: int
) -> AccessScript:
    """Reads are unguarded; the rare writes take the writer lock.

    Java consistency requires modifications to be flushed (monitor exit)
    before the next invalidation point, so the writes — like any correctly
    synchronised read-mostly structure — happen under a lock, while the
    dominant read traffic proceeds lock-free between sync epochs.
    """
    rng = random.Random(workload.seed)
    builder = ScriptBuilder(num_threads)
    tables = [
        builder.shared_array(f"table-{i}", workload.slots, home_node=i % num_nodes)
        for i in range(workload.objects)
    ]
    sync = builder.shared_object("read-mostly-sync", num_fields=1, home_node=0)
    for t in range(num_threads):
        for op_index in range(workload.ops_per_thread):
            table = tables[rng.randrange(len(tables))]
            slot = rng.randrange(workload.slots)
            if rng.random() < workload.write_fraction:
                builder.lock(t, sync)
                builder.put(t, table, slot, rng.randrange(1_000_000))
                builder.unlock(t, sync)
            else:
                builder.get(t, table, slot)
            builder.compute(t, THINK_CYCLES)
            if (op_index + 1) % workload.sync_period == 0:
                builder.lock(t, sync)
                builder.get(t, sync, 0)
                builder.unlock(t, sync)
    return builder.build()


# ---------------------------------------------------------------------------
# producer-consumer
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProducerConsumerWorkload(ScenarioWorkload):
    """Bounded-buffer hand-off through a lock-protected shared queue."""

    #: slots of the shared ring buffer
    slots: int = 16
    #: items each producer deposits (consumers drain the same count)
    items_per_thread: int = 48
    #: compute cycles spent producing/consuming each item
    item_cycles: float = 400.0

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("slots", self.slots)
        check_positive("items_per_thread", self.items_per_thread)
        check_positive("item_cycles", self.item_cycles)

    @classmethod
    def paper(cls) -> "ProducerConsumerWorkload":
        return cls(slots=64, items_per_thread=192, work_multiplier=100.0)

    @classmethod
    def testing(cls) -> "ProducerConsumerWorkload":
        return cls(slots=8, items_per_thread=10)


def generate_producer_consumer(
    workload: ProducerConsumerWorkload, num_threads: int, num_nodes: int
) -> AccessScript:
    """Even threads produce into the ring, odd threads consume from it."""
    rng = random.Random(workload.seed)
    builder = ScriptBuilder(num_threads)
    ring = builder.shared_array("ring", workload.slots, home_node=0)
    state = builder.shared_object("ring-state", num_fields=2, home_node=0)
    for t in range(num_threads):
        producer = t % 2 == 0
        cursor = rng.randrange(workload.slots)
        for _item in range(workload.items_per_thread):
            builder.compute(t, workload.item_cycles)
            builder.lock(t, state)
            builder.get(t, state, 0 if producer else 1)
            if producer:
                builder.put(t, ring, cursor, rng.randrange(1_000_000))
                builder.put(t, state, 0, cursor)
            else:
                builder.get(t, ring, cursor)
                builder.put(t, state, 1, cursor)
            builder.unlock(t, state)
            cursor = (cursor + 1) % workload.slots
    return builder.build()


# ---------------------------------------------------------------------------
# migratory
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MigratoryWorkload(ScenarioWorkload):
    """Objects whose exclusive read-modify-write owner rotates per phase."""

    #: migrating token objects; 0 means "one per thread" (resolved at generate)
    tokens: int = 0
    #: rotation phases, separated by barriers
    rounds: int = 8
    #: read-modify-write pairs per token per phase
    updates_per_round: int = 12
    #: fields of each token object
    token_fields: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        check_non_negative("tokens", self.tokens)
        check_positive("rounds", self.rounds)
        check_positive("updates_per_round", self.updates_per_round)
        check_positive("token_fields", self.token_fields)

    @classmethod
    def paper(cls) -> "MigratoryWorkload":
        return cls(rounds=24, updates_per_round=48, work_multiplier=80.0)

    @classmethod
    def testing(cls) -> "MigratoryWorkload":
        return cls(rounds=3, updates_per_round=4)


def generate_migratory(
    workload: MigratoryWorkload, num_threads: int, num_nodes: int
) -> AccessScript:
    """Thread *t* owns token ``(t + round) % tokens`` for one phase."""
    rng = random.Random(workload.seed)
    builder = ScriptBuilder(num_threads)
    num_tokens = workload.tokens or num_threads
    tokens = [
        builder.shared_object(
            f"token-{i}", num_fields=workload.token_fields, home_node=i % num_nodes
        )
        for i in range(num_tokens)
    ]
    for round_index in range(workload.rounds):
        for t in range(num_threads):
            token = tokens[(t + round_index) % num_tokens]
            for _update in range(workload.updates_per_round):
                slot = rng.randrange(workload.token_fields)
                builder.get(t, token, slot)
                builder.put(t, token, slot, rng.randrange(1_000_000))
                builder.compute(t, THINK_CYCLES)
        builder.barrier_all()
    return builder.build()


# ---------------------------------------------------------------------------
# false sharing
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FalseSharingWorkload(ScenarioWorkload):
    """Distinct per-thread fields packed onto one page.

    Every thread only ever touches its own fields — there is no true
    sharing — but all fields live in a single object and therefore on the
    same DSM page.  ``java_ic`` checks object locality in-line and never
    faults; ``java_pf`` takes a page fault per writer epoch, which is the
    page-fault gap the scenario grid records.
    """

    #: write epochs, separated by barriers (each re-protects the page)
    rounds: int = 16
    #: writes each thread issues to its own fields per epoch
    writes_per_round: int = 16
    #: private fields per thread within the shared object
    fields_per_thread: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("rounds", self.rounds)
        check_positive("writes_per_round", self.writes_per_round)
        check_positive("fields_per_thread", self.fields_per_thread)

    @classmethod
    def paper(cls) -> "FalseSharingWorkload":
        return cls(rounds=48, writes_per_round=64, work_multiplier=60.0)

    @classmethod
    def testing(cls) -> "FalseSharingWorkload":
        return cls(rounds=4, writes_per_round=4)


def generate_false_sharing(
    workload: FalseSharingWorkload, num_threads: int, num_nodes: int
) -> AccessScript:
    """One falsely-shared object; thread *t* writes only fields it owns."""
    rng = random.Random(workload.seed)
    builder = ScriptBuilder(num_threads)
    shared = builder.shared_object(
        "false-shared-page",
        num_fields=num_threads * workload.fields_per_thread,
        home_node=0,
    )
    for _round in range(workload.rounds):
        for t in range(num_threads):
            base = t * workload.fields_per_thread
            for _write in range(workload.writes_per_round):
                slot = base + rng.randrange(workload.fields_per_thread)
                builder.get(t, shared, slot)
                builder.put(t, shared, slot, rng.randrange(1_000_000))
                builder.compute(t, THINK_CYCLES)
        builder.barrier_all()
    return builder.build()


# ---------------------------------------------------------------------------
# hot lock
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HotLockWorkload(ScenarioWorkload):
    """Every thread contends on a single monitor around a tiny critical section."""

    #: monitor acquisitions per thread
    acquisitions_per_thread: int = 40
    #: shared-counter read-modify-writes inside the critical section
    critical_accesses: int = 3
    #: compute cycles spent outside the lock between acquisitions
    think_cycles: float = 800.0

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("acquisitions_per_thread", self.acquisitions_per_thread)
        check_positive("critical_accesses", self.critical_accesses)
        check_positive("think_cycles", self.think_cycles)

    @classmethod
    def paper(cls) -> "HotLockWorkload":
        return cls(acquisitions_per_thread=160, work_multiplier=120.0)

    @classmethod
    def testing(cls) -> "HotLockWorkload":
        return cls(acquisitions_per_thread=8)


def generate_hot_lock(
    workload: HotLockWorkload, num_threads: int, num_nodes: int
) -> AccessScript:
    """A single hot monitor protecting a handful of shared counters."""
    rng = random.Random(workload.seed)
    builder = ScriptBuilder(num_threads)
    counters = builder.shared_object(
        "hot-counters", num_fields=max(4, workload.critical_accesses), home_node=0
    )
    for t in range(num_threads):
        for _acq in range(workload.acquisitions_per_thread):
            builder.compute(t, workload.think_cycles)
            builder.lock(t, counters)
            for _access in range(workload.critical_accesses):
                slot = rng.randrange(max(4, workload.critical_accesses))
                builder.get(t, counters, slot)
                builder.put(t, counters, slot, rng.randrange(1_000_000))
            builder.unlock(t, counters)
    return builder.build()


# ---------------------------------------------------------------------------
# uniform all-to-all
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class UniformWorkload(ScenarioWorkload):
    """Accesses spread uniformly over one page-aligned array per node."""

    #: slots of each per-node array
    slots: int = 256
    #: accesses issued by each thread
    ops_per_thread: int = 200
    #: fraction of accesses that are writes
    write_fraction: float = 0.3
    #: barrier every this many accesses (keeps epochs comparable)
    sync_period: int = 50

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("slots", self.slots)
        check_positive("ops_per_thread", self.ops_per_thread)
        check_positive("sync_period", self.sync_period)
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(f"write_fraction must be in [0, 1], got {self.write_fraction}")

    @classmethod
    def paper(cls) -> "UniformWorkload":
        return cls(slots=1024, ops_per_thread=800, work_multiplier=40.0)

    @classmethod
    def testing(cls) -> "UniformWorkload":
        return cls(slots=64, ops_per_thread=40, sync_period=20)


def generate_uniform(
    workload: UniformWorkload, num_threads: int, num_nodes: int
) -> AccessScript:
    """All-to-all traffic: every thread hits every node's array uniformly."""
    rng = random.Random(workload.seed)
    builder = ScriptBuilder(num_threads)
    arenas = [
        builder.shared_array(f"arena-{node}", workload.slots, home_node=node)
        for node in range(num_nodes)
    ]
    # ops_per_thread must be a multiple of sync_period-sized epochs for the
    # barrier counts to line up across threads; pad the tail epoch instead of
    # truncating so every thread issues exactly ops_per_thread accesses.
    for op_index in range(workload.ops_per_thread):
        for t in range(num_threads):
            arena = arenas[rng.randrange(len(arenas))]
            slot = rng.randrange(workload.slots)
            if rng.random() < workload.write_fraction:
                builder.put(t, arena, slot, rng.randrange(1_000_000))
            else:
                builder.get(t, arena, slot)
            builder.compute(t, THINK_CYCLES)
        if (op_index + 1) % workload.sync_period == 0:
            builder.barrier_all()
    return builder.build()


# ---------------------------------------------------------------------------
# streaming scans
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StreamingWorkload(ScenarioWorkload):
    """Sequential whole-array scans: long homogeneous access runs.

    The batched-replay stress case: each thread streams through page-aligned
    arrays chunk by chunk with *no* per-element compute, so scripts are
    dominated by maximal ``get``/``put`` runs.  The generator emits the runs
    pre-grouped (``get_run``/``put_run`` ops), exercising the bulk context
    primitives directly rather than relying on interpreter coalescing.
    """

    #: slots of each per-node streamed array
    slots: int = 512
    #: scan phases, separated by barriers (each rotates array ownership)
    rounds: int = 6
    #: elements per emitted run op (each chunk is one ``*_run``)
    chunk: int = 64
    #: fraction of chunks that are written back instead of read
    write_fraction: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("slots", self.slots)
        check_positive("rounds", self.rounds)
        check_positive("chunk", self.chunk)
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(f"write_fraction must be in [0, 1], got {self.write_fraction}")

    @classmethod
    def paper(cls) -> "StreamingWorkload":
        return cls(slots=2048, rounds=12, chunk=128, work_multiplier=40.0)

    @classmethod
    def testing(cls) -> "StreamingWorkload":
        return cls(slots=96, rounds=2, chunk=16)


def generate_streaming(
    workload: StreamingWorkload, num_threads: int, num_nodes: int
) -> AccessScript:
    """Each phase, thread *t* scans array ``(t + round) % num_nodes`` in chunks.

    Rotating ownership makes every array stream through every thread's node
    over the rounds (first touch is remote, later chunks hit the cached
    pages), while the chunked pre-grouped runs keep the access stream
    maximally homogeneous between synchronisation points.
    """
    rng = random.Random(workload.seed)
    builder = ScriptBuilder(num_threads)
    streams = [
        builder.shared_array(f"stream-{node}", workload.slots, home_node=node)
        for node in range(num_nodes)
    ]
    for round_index in range(workload.rounds):
        for t in range(num_threads):
            stream = streams[(t + round_index) % len(streams)]
            for lo in range(0, workload.slots, workload.chunk):
                slots = range(lo, min(lo + workload.chunk, workload.slots))
                if rng.random() < workload.write_fraction:
                    builder.put_run(
                        t, stream, slots, [rng.randrange(1_000_000) for _ in slots]
                    )
                else:
                    builder.get_run(t, stream, slots)
            builder.compute(t, THINK_CYCLES)
        builder.barrier_all()
    return builder.build()
