"""The Hyperion runtime (paper Table 1).

Hyperion's run-time library is a collection of modules:

* **Threads subsystem** (:mod:`repro.hyperion.threads`) — Java threads mapped
  onto PM2/Marcel threads, plus the thread-facing programming interface the
  java2c translator targets;
* **Communication subsystem** (:mod:`repro.hyperion.comm`) — message handlers
  asynchronously invoked on the receiving node, mapped onto PM2 RPCs;
* **Memory subsystem** (:mod:`repro.core.memory`) — the single shared address
  space respecting the Java Memory Model;
* **Load balancer** (:mod:`repro.hyperion.loadbalancer`) — distribution of
  newly created threads to nodes (round-robin in the paper);
* **Java API subsystem** (:mod:`repro.hyperion.javaapi`) — the subset of JDK
  native methods the benchmarks need.

:class:`~repro.hyperion.runtime.HyperionRuntime` assembles all of them over a
chosen cluster preset and consistency protocol and is the main entry point of
the library.
"""

from repro.hyperion.heap import HeapAllocator
from repro.hyperion.loadbalancer import (
    BlockBalancer,
    LoadBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    create_balancer,
)
from repro.hyperion.monitors import MonitorManager
from repro.hyperion.objects import JavaArray, JavaClass, JavaObject
from repro.hyperion.runtime import ExecutionReport, HyperionRuntime, RuntimeConfig
from repro.hyperion.threads import JavaThread, JavaThreadContext

__all__ = [
    "JavaClass",
    "JavaObject",
    "JavaArray",
    "HeapAllocator",
    "MonitorManager",
    "LoadBalancer",
    "RoundRobinBalancer",
    "BlockBalancer",
    "RandomBalancer",
    "create_balancer",
    "JavaThread",
    "JavaThreadContext",
    "HyperionRuntime",
    "RuntimeConfig",
    "ExecutionReport",
]
