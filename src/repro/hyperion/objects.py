"""The Java object model as seen by the Hyperion runtime.

Compiled Java code manipulates objects through real pointers; Hyperion places
every object at an iso-address so the pointer is valid on every node, and the
DSM layer replicates the *pages* the object lives on.  The classes here hold
the reference ("main memory") copy of each object's data — the copy owned by
the object's home node — and expose the slot-level interface the memory
subsystem requires (:class:`repro.core.interfaces.SharedEntity`).

Scalar objects store their fields as a Python list (one slot per field);
arrays store a NumPy array (one slot per element), which keeps the bulk
operations the benchmarks rely on fast.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

#: bytes of object header (vtable pointer + monitor word), as in Hyperion
HEADER_BYTES = 16

#: numpy dtypes for the supported Java element types
_ELEMENT_DTYPES: dict[str, np.dtype] = {
    "double": np.dtype(np.float64),
    "float": np.dtype(np.float32),
    "long": np.dtype(np.int64),
    "int": np.dtype(np.int32),
    "boolean": np.dtype(np.uint8),
    "byte": np.dtype(np.int8),
    "ref": np.dtype(np.int64),  # references are 64-bit iso-addresses
}

_oid_counter = itertools.count(1)


def _next_oid() -> int:
    return next(_oid_counter)


class JavaClass:
    """A Java class descriptor: ordered instance fields.

    Only the information the runtime needs is kept: the class name and the
    ordered list of instance field names (all fields occupy one 8-byte slot,
    which is how Hyperion lays objects out for simplicity of the DSM diffs).
    """

    __slots__ = ("name", "field_names", "_index")

    def __init__(self, name: str, field_names: Sequence[str]):
        if not name:
            raise ValueError("class name must be non-empty")
        names = tuple(field_names)
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in class {name!r}")
        self.name = name
        self.field_names = names
        self._index = {field: i for i, field in enumerate(names)}

    @property
    def num_fields(self) -> int:
        """Number of instance fields."""
        return len(self.field_names)

    def field_index(self, field: str) -> int:
        """Slot index of *field* (raises KeyError for unknown fields)."""
        try:
            return self._index[field]
        except KeyError:
            raise KeyError(
                f"class {self.name!r} has no field {field!r}; "
                f"fields are {list(self.field_names)}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JavaClass({self.name!r}, fields={list(self.field_names)})"


class JavaObject:
    """An instance of a :class:`JavaClass` living in the distributed heap.

    ``num_slots`` and ``size_bytes`` are fixed at allocation time and read on
    every simulated access, so they are plain instance attributes rather than
    properties.
    """

    __slots__ = ("oid", "jclass", "address", "home_node", "num_slots", "size_bytes", "_data")

    #: every field occupies one 8-byte slot
    slot_size = 8

    def __init__(self, jclass: JavaClass, address: int, home_node: int):
        self.oid = _next_oid()
        self.jclass = jclass
        self.address = address
        self.home_node = home_node
        #: number of field slots
        self.num_slots = jclass.num_fields
        #: header plus field payload
        self.size_bytes = HEADER_BYTES + self.num_slots * self.slot_size
        self._data: list = [0] * jclass.num_fields

    def main_read(self, index: int):
        """Read field slot *index* from the reference copy."""
        return self._data[index]

    def main_write(self, index: int, value) -> None:
        """Write field slot *index* of the reference copy."""
        self._data[index] = value

    def main_read_range(self, lo: int, hi: int) -> np.ndarray:
        """Read field slots [lo, hi) as an object array."""
        return np.asarray(self._data[lo:hi], dtype=object)

    def main_write_range(self, lo: int, hi: int, values: Sequence) -> None:
        """Write field slots [lo, hi)."""
        values = list(values)
        if len(values) != hi - lo:
            raise ValueError("value count does not match the slot range")
        self._data[lo:hi] = values

    def snapshot(self) -> list:
        """Deep copy of the field payload for node-local caching."""
        return list(self._data)

    # -- convenience -------------------------------------------------------------
    def field_index(self, field: str) -> int:
        """Slot index of the named field."""
        return self.jclass.field_index(field)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<JavaObject {self.jclass.name} oid={self.oid} "
            f"addr={self.address:#x} home={self.home_node}>"
        )


class JavaArray:
    """A Java array living in the distributed heap (NumPy-backed).

    ``slot_size``, ``num_slots`` and ``size_bytes`` are fixed at allocation
    time and read on every simulated access, so they are plain instance
    attributes rather than properties.
    """

    __slots__ = (
        "oid",
        "element_type",
        "length",
        "address",
        "home_node",
        "slot_size",
        "num_slots",
        "size_bytes",
        "_data",
    )

    def __init__(self, element_type: str, length: int, address: int, home_node: int):
        if element_type not in _ELEMENT_DTYPES:
            raise ValueError(
                f"unsupported element type {element_type!r}; "
                f"supported: {sorted(_ELEMENT_DTYPES)}"
            )
        if length < 0:
            raise ValueError(f"array length must be >= 0, got {length}")
        self.oid = _next_oid()
        self.element_type = element_type
        self.length = int(length)
        self.address = address
        self.home_node = home_node
        self._data = np.zeros(self.length, dtype=_ELEMENT_DTYPES[element_type])
        #: size of one element in bytes
        self.slot_size = int(self._data.dtype.itemsize)
        #: number of elements
        self.num_slots = self.length
        #: header plus element payload
        self.size_bytes = HEADER_BYTES + self.length * self.slot_size

    def main_read(self, index: int):
        """Read element *index* from the reference copy (as a Python scalar)."""
        return self._data[index].item()

    def main_write(self, index: int, value) -> None:
        """Write element *index* of the reference copy."""
        self._data[index] = value

    def main_read_range(self, lo: int, hi: int) -> np.ndarray:
        """Copy of elements [lo, hi) from the reference copy."""
        return self._data[lo:hi].copy()

    def main_write_range(self, lo: int, hi: int, values: Sequence) -> None:
        """Write elements [lo, hi) of the reference copy."""
        self._data[lo:hi] = values

    def snapshot(self) -> np.ndarray:
        """Deep copy of the element payload for node-local caching."""
        return self._data.copy()

    # -- convenience -------------------------------------------------------------
    def as_numpy(self) -> np.ndarray:
        """Read-only view of the reference copy (for result verification)."""
        view = self._data.view()
        view.setflags(write=False)
        return view

    @staticmethod
    def element_size_of(element_type: str) -> int:
        """Element size in bytes for *element_type*."""
        try:
            return int(_ELEMENT_DTYPES[element_type].itemsize)
        except KeyError:
            raise ValueError(f"unsupported element type {element_type!r}") from None

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<JavaArray {self.element_type}[{self.length}] oid={self.oid} "
            f"addr={self.address:#x} home={self.home_node}>"
        )
