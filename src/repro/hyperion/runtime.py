"""Runtime assembly: one cluster-wide JVM image.

:class:`HyperionRuntime` wires together every subsystem of the paper's
Table 1 over a chosen cluster preset and consistency protocol:

* the discrete-event engine and the Marcel thread package,
* the PM2 RPC layer and Hyperion's communication subsystem,
* the iso-address allocator, the DSM-PM2 page manager and the selected
  Java-consistency protocol (``java_ic`` or ``java_pf``),
* the memory subsystem (Table 2 primitives) with its per-node caches,
* monitors, the load balancer and the Java API natives.

A typical use::

    from repro.cluster import myrinet_cluster
    from repro.hyperion import HyperionRuntime

    runtime = HyperionRuntime(myrinet_cluster(), num_nodes=4, protocol="java_pf")
    runtime.spawn_main(my_main_body)       # a generator function (ctx) -> ...
    report = runtime.run()
    print(report.execution_seconds, report.stats.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any

from repro.cluster.costs import CostModel
from repro.cluster.presets import ClusterSpec
from repro.core.memory import MemorySubsystem
from repro.core.protocol import ConsistencyProtocol, create_protocol
from repro.core.stats import RunStats
from repro.dsm.page_manager import PageManager
from repro.hyperion.comm import CommunicationSubsystem
from repro.hyperion.heap import HeapAllocator
from repro.hyperion.javaapi import JavaApiSubsystem
from repro.hyperion.loadbalancer import LoadBalancer, create_balancer
from repro.hyperion.monitors import MonitorManager
from repro.hyperion.objects import JavaClass
from repro.hyperion.threads import ClusterBarrier, JavaThread
from repro.pm2.isoaddr import IsoAddressAllocator
from repro.pm2.marcel import MarcelRuntime
from repro.pm2.migration import MigrationManager
from repro.pm2.rpc import RpcSystem
from repro.simulation.engine import Engine
from repro.simulation.trace import TraceRecorder
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.sanitizer import ConsistencySanitizer, SanitizerReport
    from repro.obs.ledger import RunTelemetry, TelemetryCollector


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunable runtime parameters that are not part of the cluster preset."""

    #: consistency protocol name ("java_pf", "java_ic", ...)
    protocol: str = "java_pf"
    #: application threads per node (the paper uses 1; ablation A3 uses more)
    threads_per_node: int = 1
    #: load-balancer policy for newly created threads
    balancer: str = "round_robin"
    #: override the cluster's page size (bytes); None keeps the preset value
    page_size: int | None = None
    #: per-node iso-address arena size in bytes
    arena_size: int = 256 * 1024 * 1024
    #: keep a log of every RPC (for debugging / tests)
    keep_rpc_log: bool = False
    #: record a TraceRecorder of every simulation event
    trace: bool = False
    #: random seed forwarded to applications and randomised policies
    seed: int = 12345

    def __post_init__(self) -> None:
        check_positive("threads_per_node", self.threads_per_node)
        check_positive("arena_size", self.arena_size)
        if self.page_size is not None:
            check_positive("page_size", self.page_size)

    def with_overrides(self, **kwargs) -> "RuntimeConfig":
        """Return a copy with some parameters replaced (validation re-runs)."""
        return replace(self, **kwargs)


@dataclass
class ExecutionReport:
    """Everything one simulated execution produced."""

    cluster: str
    protocol: str
    num_nodes: int
    num_threads: int
    execution_seconds: float
    stats: RunStats
    console: list[str] = field(default_factory=list)
    result: Any = None
    #: host-side diagnostic: simulation events the engine dispatched to
    #: produce this report.  Deliberately NOT part of :meth:`to_dict` — the
    #: dictionary is the determinism contract (byte-identical across
    #: executors, cache round trips and fast-path changes), and event counts
    #: are an implementation detail of the kernel, not of the simulated
    #: machine.  Consumed by :mod:`repro.perf` for throughput reporting.
    events_processed: int = 0
    #: host-side diagnostic: events the engine priced analytically instead
    #: of dispatching (zero unless the run opted into fast-forward mode).
    #: ``events_processed + events_fast_forwarded`` is invariant across
    #: modes; like ``events_processed`` it is NOT part of :meth:`to_dict`.
    events_fast_forwarded: int = 0
    #: consistency-sanitizer findings when the run was executed with
    #: ``sanitize=True`` (None otherwise).  Host-side like
    #: ``events_processed``: deliberately NOT part of :meth:`to_dict` — the
    #: dictionary is the byte-identity contract and must not change shape
    #: (or content) with an opt-in checking layer.
    sanitizer: "SanitizerReport" | None = None
    #: out-of-band telemetry ledger when the run was executed with
    #: ``telemetry=True`` (None otherwise).  Same contract as ``sanitizer``:
    #: host-side, never serialised into :meth:`to_dict` or the result store's
    #: pinned payload — the store persists it *next to* the entry instead.
    telemetry: "RunTelemetry" | None = None

    @property
    def page_rehomes(self) -> int:
        """Page home transfers performed by a migratory home policy.

        Derived from the run's DSM counters, and — like
        ``events_processed`` — deliberately NOT part of :meth:`to_dict`:
        the dictionary schema is shared by every protocol and pinned
        byte-for-byte by the determinism suite and the golden cells, so
        fixed-home protocols must not grow a key for a mechanism they
        never exercise.  Being derived, it also survives the result
        store's JSON round trip with the rest of the stats.
        """
        return self.stats.dsm.page_rehomes

    # -- topology-aware traffic split (host-side, like page_rehomes) -------
    @property
    def intra_cluster_page_fetches(self) -> int:
        """Page transfers whose requester and home share a topology island."""
        return self.stats.dsm.intra_island_page_fetches

    @property
    def inter_cluster_page_fetches(self) -> int:
        """Page transfers that crossed an inter-cluster (backbone) link."""
        return self.stats.dsm.inter_island_page_fetches

    @property
    def intra_cluster_fetch_seconds(self) -> float:
        """Latency charged for intra-island page transfers."""
        return self.stats.dsm.intra_island_fetch_seconds

    @property
    def inter_cluster_fetch_seconds(self) -> float:
        """Latency charged for island-crossing page transfers."""
        return self.stats.dsm.inter_island_fetch_seconds

    @property
    def inter_cluster_bytes(self) -> int:
        """Page payload bytes shipped across inter-cluster links."""
        return self.stats.dsm.inter_island_bytes

    @property
    def inter_cluster_cost_share(self) -> float:
        """Fraction of page-transfer latency spent crossing islands (0..1).

        Zero on single-switch topologies (everything is one island) and on
        runs that fetched nothing.  Like :attr:`page_rehomes`, derived from
        the DSM counters and deliberately outside :meth:`to_dict` — the
        byte-pinned schema must not vary with the cluster's shape.
        """
        dsm = self.stats.dsm
        total = dsm.intra_island_fetch_seconds + dsm.inter_island_fetch_seconds
        if total <= 0.0:
            return 0.0
        return dsm.inter_island_fetch_seconds / total

    def to_dict(self) -> dict[str, Any]:
        """Flat dictionary (JSON-serialisable apart from ``result``)."""
        out: dict[str, Any] = {
            "cluster": self.cluster,
            "protocol": self.protocol,
            "num_nodes": self.num_nodes,
            "num_threads": self.num_threads,
            "execution_seconds": self.execution_seconds,
        }
        out.update(self.stats.as_dict())
        return out

    def __str__(self) -> str:
        return (
            f"[{self.cluster}/{self.protocol} n={self.num_nodes}] "
            f"{self.execution_seconds:.6f} s ({self.stats.summary()})"
        )


class HyperionRuntime:
    """A single distributed JVM image spanning ``num_nodes`` cluster nodes."""

    def __init__(
        self,
        cluster: ClusterSpec,
        num_nodes: int | None = None,
        protocol: str | None = None,
        config: RuntimeConfig | None = None,
        sanitize: bool = False,
        telemetry: bool = False,
        fast_forward: bool = False,
    ):
        self.config = config or RuntimeConfig()
        if protocol is not None:
            self.config = self.config.with_overrides(protocol=protocol)
        self.cluster = cluster
        self.num_nodes = cluster.num_nodes if num_nodes is None else int(num_nodes)
        check_positive("num_nodes", self.num_nodes)
        if self.num_nodes > cluster.num_nodes:
            raise ValueError(
                f"cluster {cluster.name!r} has {cluster.num_nodes} nodes; "
                f"cannot run on {self.num_nodes}"
            )

        page_size = self.config.page_size or cluster.page_size
        self.cost_model: CostModel = CostModel(
            machine=cluster.machine,
            network=cluster.network,
            software=cluster.software,
            page_size=page_size,
        )

        trace = TraceRecorder(max_records=200_000) if self.config.trace else None
        self.engine = Engine(trace=trace)
        # Analytic fast-forward is a host-side execution mode, not part of
        # RuntimeConfig: the simulated outcome is byte-identical either way,
        # so cache keys and config dictionaries must not distinguish it.
        self.engine.fast_forward = bool(fast_forward)
        self.topology = cluster.topology_factory(self.num_nodes, cluster.network)
        self.isoaddr = IsoAddressAllocator(
            num_nodes=self.num_nodes,
            arena_size=self.config.arena_size,
            page_size=page_size,
        )
        self.page_manager = PageManager(
            num_nodes=self.num_nodes,
            page_size=page_size,
            isoaddr=self.isoaddr,
            cost_model=self.cost_model,
            topology=self.topology,
        )
        self.protocol: ConsistencyProtocol = create_protocol(
            self.config.protocol, self.page_manager, self.cost_model
        )
        self.run_stats = RunStats()
        self.memory = MemorySubsystem(
            page_manager=self.page_manager,
            cost_model=self.cost_model,
            protocol=self.protocol,
            num_nodes=self.num_nodes,
            run_stats=self.run_stats,
        )
        self.marcel = MarcelRuntime(self.engine, self.num_nodes)
        self.rpc = RpcSystem(
            self.engine, self.topology, self.cost_model, keep_log=self.config.keep_rpc_log
        )
        self.comm = CommunicationSubsystem(self.rpc)
        self.monitors = MonitorManager(
            self.engine, self.topology, self.cost_model, stats=self.run_stats.monitors
        )
        self.heap = HeapAllocator(self.isoaddr, self.page_manager)
        self.balancer: LoadBalancer = create_balancer(self.config.balancer, self.num_nodes)
        self.javaapi = JavaApiSubsystem()
        self.migration = MigrationManager(self.marcel, self.topology, self.cost_model)
        # protocols whose home policy re-homes pages price the transfer
        # through the PM2 migration machinery (no-op for everyone else)
        self.protocol.attach_migration(self.migration)

        self.threads: list[JavaThread] = []
        self.barriers: list[ClusterBarrier] = []
        self._register_internal_services()

        # The consistency sanitizer (opt-in shadow layer) must be installed
        # before any thread context binds the memory/monitor entry points.
        # Imported lazily: the analysis package stays entirely off the
        # non-sanitized path.
        self.sanitizer: "ConsistencySanitizer" | None = None
        if sanitize:
            from repro.analysis.sanitizer import ConsistencySanitizer

            self.sanitizer = ConsistencySanitizer(self)
            # the sanitizer wraps the memory/monitor entry points on the
            # instance; the fused access fast path would slip past those
            # wrappers, so the whole run takes the exact per-access path
            self.memory.disable_access_fast_path()

        # The telemetry collector (opt-in observation layer) mirrors the
        # sanitizer pattern: lazily imported so the obs package stays
        # entirely off the default path, installed before any thread context
        # binds its span tracer.  Strictly out-of-band — it never charges
        # time or adds events.
        self.telemetry: "TelemetryCollector" | None = None
        if telemetry:
            from repro.obs.ledger import TelemetryCollector

            self.telemetry = TelemetryCollector()
            self.telemetry.attach(self)

    # ------------------------------------------------------------------
    def _register_internal_services(self) -> None:
        """Register the runtime's own message handlers on every node."""
        for node in range(self.num_nodes):
            self.comm.register_oneway(
                node, CommunicationSubsystem.SERVICE_SPAWN_THREAD, lambda src, payload: None
            )
            self.comm.register_oneway(
                node, CommunicationSubsystem.SERVICE_BARRIER, lambda src, payload: None
            )

    # ------------------------------------------------------------------
    # class / thread / barrier factories
    # ------------------------------------------------------------------
    @staticmethod
    def java_class(name: str, fields: Sequence[str]) -> JavaClass:
        """Declare a Java class with the given instance fields."""
        return JavaClass(name, fields)

    def create_thread(
        self,
        body: Callable,
        args: Sequence[Any] = (),
        node: int | None = None,
        name: str | None = None,
        index: int | None = None,
    ) -> JavaThread:
        """Create and start a Java thread (placement via the load balancer)."""
        node_id = self.balancer.next_node() if node is None else int(node)
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(f"node {node_id} out of range [0, {self.num_nodes})")
        thread = JavaThread(
            runtime=self,
            node_id=node_id,
            body=body,
            args=args,
            name=name or f"java-thread-{len(self.threads)}",
            index=len(self.threads) if index is None else index,
        )
        self.threads.append(thread)
        self.run_stats.threads.created += 1
        return thread

    def spawn_main(self, body: Callable, *args: Any, node: int = 0) -> JavaThread:
        """Start the application's ``main`` thread (on node 0 by convention)."""
        return self.create_thread(body, args, node=node, name="java-main", index=-1)

    def create_barrier(self, parties: int, home_node: int = 0, name: str = "") -> ClusterBarrier:
        """Create a cluster-wide barrier for *parties* threads."""
        barrier = ClusterBarrier(
            self, parties, home_node=home_node, name=name or f"barrier-{len(self.barriers)}"
        )
        self.barriers.append(barrier)
        return barrier

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> ExecutionReport:
        """Run the simulation to completion and assemble the report."""
        self.engine.run(until=until)
        self.run_stats.execution_seconds = self.engine.now
        self.run_stats.monitors.barriers = sum(b.episodes for b in self.barriers)
        main_result = None
        for thread in self.threads:
            if thread.name == "java-main":
                main_result = thread.result
                break
        self.run_stats.result = main_result
        return ExecutionReport(
            cluster=self.cluster.name,
            protocol=self.protocol.name,
            num_nodes=self.num_nodes,
            num_threads=len(self.threads),
            execution_seconds=self.engine.now,
            stats=self.run_stats,
            console=list(self.javaapi.console),
            result=main_result,
            events_processed=self.engine.events_processed,
            events_fast_forwarded=self.engine.events_elided,
            sanitizer=self.sanitizer.report() if self.sanitizer is not None else None,
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable configuration summary."""
        lines = [
            f"cluster   : {self.cluster.name} ({self.num_nodes} node(s))",
            f"protocol  : {self.protocol.describe()}",
            f"balancer  : {self.config.balancer}",
            self.cost_model.describe(),
        ]
        return "\n".join(lines)
