"""Distributed heap allocation.

Objects are allocated from the iso-address arena of their *home node* and the
pages they span are registered with the DSM page manager.  The home node can
be chosen explicitly (the benchmarks use this to control data distribution,
e.g. Jacobi's row blocks) or defaults to the allocating thread's node, which
is Hyperion's behaviour.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dsm.page_manager import PageManager
from repro.hyperion.objects import HEADER_BYTES, JavaArray, JavaClass, JavaObject
from repro.pm2.isoaddr import IsoAddressAllocator
from repro.util.validation import check_non_negative


class HeapAllocator:
    """Allocates Java objects and arrays in the distributed heap."""

    def __init__(self, isoaddr: IsoAddressAllocator, page_manager: PageManager):
        self.isoaddr = isoaddr
        self.page_manager = page_manager
        self.objects_allocated = 0
        self.arrays_allocated = 0
        self.bytes_allocated = 0

    # ------------------------------------------------------------------
    def new_object(self, jclass: JavaClass, home_node: int) -> JavaObject:
        """Allocate an instance of *jclass* homed on *home_node*."""
        check_non_negative("home_node", home_node)
        size = HEADER_BYTES + jclass.num_fields * JavaObject.slot_size
        allocation = self.isoaddr.allocate(home_node, max(size, 1), align=8)
        obj = JavaObject(jclass, allocation.address, home_node)
        self.page_manager.register_range(allocation.address, max(size, 1))
        self.objects_allocated += 1
        self.bytes_allocated += size
        return obj

    def new_array(
        self,
        element_type: str,
        length: int,
        home_node: int,
        page_aligned: bool = False,
    ) -> JavaArray:
        """Allocate an array of *length* elements homed on *home_node*.

        ``page_aligned`` allocates the array on a page boundary; the
        benchmarks use it for large arrays (e.g. Jacobi rows) so that each
        array's pages are not shared with unrelated objects — the layout the
        paper's data distribution discussion assumes.
        """
        check_non_negative("home_node", home_node)
        elem_size = JavaArray.element_size_of(element_type)
        size = HEADER_BYTES + length * elem_size
        align = self.isoaddr.page_size if page_aligned else 8
        allocation = self.isoaddr.allocate(home_node, max(size, 1), align=align)
        array = JavaArray(element_type, length, allocation.address, home_node)
        self.page_manager.register_range(allocation.address, max(size, 1))
        self.arrays_allocated += 1
        self.bytes_allocated += size
        return array

    def new_matrix(
        self,
        element_type: str,
        rows: int,
        cols: int,
        home_nodes: Sequence[int],
        page_aligned: bool = True,
    ) -> list:
        """Allocate a matrix as a list of row arrays with per-row homes.

        ``home_nodes`` gives the home node of each row (len == rows); this is
        how the row-block decompositions of Jacobi and ASP are expressed.
        """
        if len(home_nodes) != rows:
            raise ValueError(
                f"home_nodes has {len(home_nodes)} entries for {rows} rows"
            )
        return [
            self.new_array(element_type, cols, home_nodes[r], page_aligned=page_aligned)
            for r in range(rows)
        ]
