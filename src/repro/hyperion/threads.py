"""Java threads and the thread-facing programming interface.

The java2c translator turns a Java thread's ``run()`` method into native code
that calls into the Hyperion runtime for every object access and every
synchronisation operation.  In this reproduction a Java thread body is a
Python generator function ``body(ctx, *args)`` receiving a
:class:`JavaThreadContext` — the "post-translation" form of the program (see
DESIGN.md, substitution 2).  Object accesses are plain calls (``ctx.get``,
``ctx.put``, ``ctx.aget_range`` ...); blocking operations (monitors, barriers,
join, sleep) are used through ``yield from``.

Time accounting: the context accumulates CPU time (compute, checks, fault
handling) and wait time (page requests, update messages) and flushes both
onto the simulation clock at every blocking point, holding the node CPU for
the CPU part only.  With one application thread per node — the configuration
used throughout the paper — this is exact; with several threads per node it
serialises compute while allowing communication to overlap, which is what the
paper's "future work" ablation (A3) explores.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Sequence
from functools import partial
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.context import AccessContext
from repro.hyperion.objects import JavaArray, JavaClass, JavaObject
from repro.simulation.resources import Barrier as SimBarrier
from repro.util.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover
    from repro.hyperion.runtime import HyperionRuntime


class ClusterBarrier:
    """A runtime-level barrier with Java-consistency semantics.

    Arriving at the barrier flushes the thread's modifications
    (``updateMainMemory``); leaving it invalidates the node cache, exactly as
    a monitor exit/enter pair would.  The coordinator lives on ``home_node``
    (node 0 by default), so remote participants pay a control round trip.
    """

    def __init__(self, runtime: "HyperionRuntime", parties: int, home_node: int = 0, name: str = "barrier"):
        if parties < 1:
            raise ValueError(f"barrier needs at least one party, got {parties}")
        self.runtime = runtime
        self.parties = parties
        self.home_node = home_node
        self.name = name
        self.sim_barrier = SimBarrier(runtime.engine, parties, name=name)

    @property
    def episodes(self) -> int:
        """Number of completed barrier episodes."""
        return self.sim_barrier.generations


class JavaThread:
    """A Java application thread executing on one cluster node."""

    def __init__(
        self,
        runtime: "HyperionRuntime",
        node_id: int,
        body: Callable,
        args: Sequence[Any],
        name: str,
        index: int = 0,
    ):
        self.runtime = runtime
        self.body = body
        self.args = tuple(args)
        self.name = name
        self.index = index
        self.result: Any = None
        self.finished = False
        self.marcel = runtime.marcel.create_thread(node_id, name=name)
        self.ctx = JavaThreadContext(runtime, self)
        spans = self.ctx._spans
        if spans is not None:
            spans.register(name, runtime.engine.now)
        self.marcel.start(self._wrapper())

    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        """Node the thread currently runs on (migration updates it)."""
        return self.marcel.node_id

    @property
    def is_alive(self) -> bool:
        """True while the thread body has not completed."""
        return self.marcel.is_alive

    def _wrapper(self) -> Generator:
        produced = self.body(self.ctx, *self.args)
        if hasattr(produced, "send"):
            result = yield from produced
        else:  # a body with no blocking operations is a plain function
            result = produced
        # Thread termination publishes the thread's writes (JMM: the join of
        # this thread happens-after everything it did).
        self.runtime.memory.update_main_memory(self.ctx, self.node_id)
        yield from self.ctx._flush()
        sanitizer = self.runtime.sanitizer
        if sanitizer is not None:
            sanitizer.note_thread_finish(self)
        spans = self.ctx._spans
        if spans is not None:
            spans.finish(self.name, self.runtime.engine.now)
        self.result = result
        self.finished = True
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JavaThread {self.name!r} node={self.node_id} index={self.index}>"


class JavaThreadContext(AccessContext):
    """Everything a compiled Java thread can do, with cost accounting."""

    def __init__(self, runtime: "HyperionRuntime", thread: JavaThread):
        self.runtime = runtime
        self.thread = thread
        self._pending_cpu = 0.0
        self._pending_wait = 0.0
        # hot-path constants, resolved once: the machine spec is immutable
        # and the Marcel thread handle never changes (only its node does)
        machine = runtime.cost_model.machine
        self._freq = machine.frequency_hz
        self._cycles_per_flop = machine.cycles_per_flop
        self._cycles_per_int_op = machine.cycles_per_int_op
        self._marcel = thread.marcel
        self._memory = runtime.memory
        # virtual-time span tracer (None unless the spec opted into
        # telemetry); observes engine.now around existing yields only — it
        # must never add or split a yield, or scheduling would change
        telemetry = runtime.telemetry
        self._spans = telemetry.spans if telemetry is not None else None
        # analytic fast-forward (opt-in per run; see Engine.try_fast_advance)
        self._fast_forward = runtime.engine.fast_forward

    # ------------------------------------------------------------------
    # identity / time
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        """Node this thread currently executes on (migration updates it)."""
        return self._marcel.node_id

    @property
    def thread_index(self) -> int:
        """Application-level index of this thread (set at spawn time)."""
        return self.thread.index

    @property
    def now(self) -> float:
        """Current virtual time, including not-yet-flushed pending time."""
        return self.runtime.engine.now + self._pending_cpu + self._pending_wait

    # ------------------------------------------------------------------
    # AccessContext: cost charging
    # ------------------------------------------------------------------
    def charge_cpu(self, seconds: float) -> None:
        # validation inlined: this is called for every simulated access
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds!r}")
        self._pending_cpu += seconds

    def charge_wait(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds!r}")
        self._pending_wait += seconds

    def compute(
        self,
        cycles: float = 0.0,
        mem_seconds: float = 0.0,
        flops: float = 0.0,
        int_ops: float = 0.0,
    ) -> None:
        """Charge application compute work.

        ``cycles`` are raw CPU cycles; ``flops``/``int_ops`` are converted
        using the machine's per-operation costs; ``mem_seconds`` is the
        clock-independent memory-hierarchy component.  The arithmetic is the
        inlined equivalent of ``machine.seconds_for_work`` — identical
        expressions in identical order, so the charged floats match the
        cost-model methods bit for bit.
        """
        if mem_seconds < 0:
            raise ValueError(f"mem_seconds must be >= 0, got {mem_seconds!r}")
        total_cycles = (
            cycles + flops * self._cycles_per_flop + int_ops * self._cycles_per_int_op
        )
        if total_cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {total_cycles!r}")
        # charge_cpu, inlined (both operands already validated non-negative)
        self._pending_cpu += total_cycles / self._freq + mem_seconds

    def _flush(self) -> Generator:
        """Pay accumulated CPU and wait time on the simulation clock.

        In fast-forward mode the Marcel ``try_*_fast`` twins are offered the
        phase first; they price it analytically (identical accounting,
        identical final clock) when the CPU is provably uncontended, and
        refuse — falling back to the exact event path below — whenever any
        other scheduled event could interleave.  Span attribution is shared
        by both paths: the flush hooks observe the same amounts at the same
        ``engine.now`` either way.
        """
        cpu, wait = self._pending_cpu, self._pending_wait
        self._pending_cpu = 0.0
        self._pending_wait = 0.0
        spans = self._spans
        marcel = self.runtime.marcel
        fast = self._fast_forward
        if cpu > 0.0:
            self.runtime.run_stats.record_cpu(self.node_id, cpu)
            if not (fast and marcel.try_occupy_cpu_fast(self.thread.marcel, cpu)):
                yield from marcel.occupy_cpu(self.thread.marcel, cpu)
            if spans is not None:
                spans.flush_cpu(self.thread.name, cpu, self.runtime.engine.now)
        if wait > 0.0:
            self.runtime.run_stats.record_wait(self.node_id, wait)
            if not (fast and marcel.try_wait_fast(self.thread.marcel, wait)):
                yield from marcel.wait(self.thread.marcel, wait)
            if spans is not None:
                spans.flush_wait(self.thread.name, wait, self.runtime.engine.now)

    # ------------------------------------------------------------------
    # heap allocation
    # ------------------------------------------------------------------
    def new_object(self, jclass: JavaClass, home_node: int | None = None) -> JavaObject:
        """Allocate an object (homed on this node unless specified)."""
        home = self.node_id if home_node is None else home_node
        obj = self.runtime.heap.new_object(jclass, home)
        self.compute(cycles=100.0 + 2.0 * jclass.num_fields)
        return obj

    def new_array(
        self,
        element_type: str,
        length: int,
        home_node: int | None = None,
        page_aligned: bool = False,
    ) -> JavaArray:
        """Allocate an array (homed on this node unless specified)."""
        home = self.node_id if home_node is None else home_node
        array = self.runtime.heap.new_array(
            element_type, length, home, page_aligned=page_aligned
        )
        # allocation plus Java's mandatory zero-initialisation
        self.compute(cycles=100.0 + 0.25 * length)
        return array

    # ------------------------------------------------------------------
    # object accesses (Table 2 primitives, routed through the protocol)
    # ------------------------------------------------------------------
    def _slot(self, obj: JavaObject, field) -> int:
        return obj.field_index(field) if isinstance(field, str) else int(field)

    def get(self, obj: JavaObject, field) -> Any:
        """Read a field of a Java object."""
        return self._memory.get(self, self._marcel.node_id, obj, self._slot(obj, field))

    def put(self, obj: JavaObject, field, value: Any) -> None:
        """Write a field of a Java object."""
        self._memory.put(self, self._marcel.node_id, obj, self._slot(obj, field), value)

    def aget(self, array: JavaArray, index: int) -> Any:
        """Read one array element."""
        return self._memory.get(self, self._marcel.node_id, array, index)

    def aput(self, array: JavaArray, index: int, value: Any) -> None:
        """Write one array element."""
        self._memory.put(self, self._marcel.node_id, array, index, value)

    def aget_range(self, array: JavaArray, lo: int = 0, hi: int | None = None) -> np.ndarray:
        """Bulk read of array elements [lo, hi); accounts one access each."""
        hi = array.num_slots if hi is None else hi
        return self._memory.get_range(self, self._marcel.node_id, array, lo, hi)

    def aput_range(
        self, array: JavaArray, lo: int, hi: int, values: Sequence
    ) -> None:
        """Bulk write of array elements [lo, hi); accounts one access each."""
        self._memory.put_range(self, self._marcel.node_id, array, lo, hi, values)

    def account_accesses(
        self,
        obj,
        count: int,
        lo: int = 0,
        hi: int | None = None,
        write: bool = False,
    ) -> None:
        """Account extra per-element accesses without moving data (see memory)."""
        self._memory.account_accesses(
            self, self._marcel.node_id, obj, count, lo=lo, hi=hi, write=write
        )

    def bulk_ops(self) -> tuple:
        """Pre-bound bulk primitives for hot per-row application loops.

        Returns ``(get_range, put_range, account_accesses, update_range)``
        partials that are call-for-call identical to :meth:`aget_range` /
        :meth:`aput_range` / :meth:`account_accesses` /
        :meth:`aupdate_range` — same charges, same counters, same data
        movement — minus one Python frame per call.  The range bounds must
        be passed explicitly (no ``hi=None`` default).  Worth using only in
        loops issuing thousands of range accesses.
        """
        memory = self._memory
        node = self._marcel.node_id
        return (
            partial(memory.get_range, self, node),
            partial(memory.put_range, self, node),
            partial(memory.account_accesses, self, node),
            partial(memory.update_range, self, node),
        )

    def aupdate_range(
        self,
        array: JavaArray,
        lo: int,
        hi: int,
        transform,
        extra_obj=None,
        extra: int = 0,
    ) -> None:
        """Fused fetch-modify-store on [lo, hi) (see ``memory.update_range``).

        Equivalent to ``aget_range`` + ``transform`` + ``aput_range`` (when
        the transform returns values) + ``account_accesses(extra_obj,
        extra)``, in that order, with identical charges and counters.
        """
        self._memory.update_range(
            self, self._marcel.node_id, array, lo, hi, transform,
            extra_obj=extra_obj, extra=extra,
        )

    def make_range_updater(self, array: JavaArray, lo: int, hi: int, extra: int = 0):
        """Prepared :meth:`aupdate_range` closure for a fixed span.

        Returns ``update(transform, extra_obj=None)`` with all the
        run-constant gate work of ``memory.update_range`` resolved once
        (see ``memory.make_range_updater``) — for loops that revisit the
        same span every iteration.
        """
        return self._memory.make_range_updater(
            self, self._marcel.node_id, array, lo, hi, extra=extra
        )

    def get_run(self, obj, slots: Sequence[int], extra: int = 0) -> None:
        """A run of scalar ``get``\\ s (accounting only; see memory.get_run)."""
        self._memory.get_run(self, self._marcel.node_id, obj, slots, extra=extra)

    def put_run(self, obj, slots: Sequence[int], values: Sequence, extra: int = 0) -> None:
        """A run of scalar ``put``\\ s: ``put(slots[k], values[k])`` for all k."""
        self._memory.put_run(
            self, self._marcel.node_id, obj, slots, values, extra=extra
        )

    def load(self, obj) -> None:
        """``loadIntoCache``: make *obj* resident on this node."""
        self.runtime.memory.load_into_cache(self, self.node_id, obj)

    # ------------------------------------------------------------------
    # synchronisation (use through ``yield from``)
    # ------------------------------------------------------------------
    def monitor_enter(self, obj) -> Generator:
        """Enter *obj*'s monitor (acquire + cache invalidation)."""
        yield from self._flush()
        spans = self._spans
        if spans is not None:
            spans.begin(self.thread.name, "monitor_wait")
        yield from self.runtime.monitors.enter(self, obj)
        yield from self._flush()
        if spans is not None:
            spans.end(self.thread.name, self.runtime.engine.now)
        self.runtime.memory.invalidate_cache(self, self.node_id)

    def monitor_exit(self, obj) -> Generator:
        """Exit *obj*'s monitor (flush modifications + release)."""
        self.runtime.memory.update_main_memory(self, self.node_id)
        yield from self._flush()
        self.runtime.monitors.exit(self, obj)

    def synchronized(self, obj, critical_section: Callable[[], Any]) -> Generator:
        """Run ``critical_section()`` inside *obj*'s monitor.

        The critical section is a plain (non-blocking) callable; for blocking
        critical sections use explicit enter/exit.
        """
        yield from self.monitor_enter(obj)
        try:
            result = critical_section()
        finally:
            yield from self.monitor_exit(obj)
        return result

    def wait(self, obj) -> Generator:
        """``Object.wait()`` with Java-consistency side effects."""
        spans = self._spans
        if spans is not None:
            # app compute carried in from before the wait keeps its default
            # attribution; the update/flush/sleep from here on is the wait
            spans.begin(
                self.thread.name,
                "monitor_wait",
                self._pending_cpu,
                self._pending_wait,
            )
        self.runtime.memory.update_main_memory(self, self.node_id)
        yield from self._flush()
        yield from self.runtime.monitors.wait(self, obj)
        if spans is not None:
            spans.end(self.thread.name, self.runtime.engine.now)
        self.runtime.memory.invalidate_cache(self, self.node_id)

    def notify(self, obj) -> int:
        """``Object.notify()``."""
        return self.runtime.monitors.notify(self, obj)

    def notify_all(self, obj) -> int:
        """``Object.notifyAll()``."""
        return self.runtime.monitors.notify_all(self, obj)

    def barrier(self, barrier: ClusterBarrier) -> Generator:
        """Wait at a :class:`ClusterBarrier` (flush before, invalidate after)."""
        spans = self._spans
        if spans is not None:
            spans.begin(
                self.thread.name,
                "barrier",
                self._pending_cpu,
                self._pending_wait,
            )
        self.runtime.memory.update_main_memory(self, self.node_id)
        if self.node_id != barrier.home_node:
            self.charge_wait(self.runtime.cost_model.rpc_round_trip_seconds(32, 32))
        else:
            self.charge_cpu(self.runtime.cost_model.monitor_local_seconds())
        yield from self._flush()
        sanitizer = self.runtime.sanitizer
        if sanitizer is None:
            yield barrier.sim_barrier.wait()
        else:
            # arrival snapshot (post-flush) feeds the episode clock; the
            # resume edge lands just before the acquire-side invalidation
            generation = sanitizer.note_barrier_arrive(self.node_id, barrier)
            yield barrier.sim_barrier.wait()
            sanitizer.note_barrier_resume(self.node_id, barrier, generation)
        if spans is not None:
            spans.end(self.thread.name, self.runtime.engine.now)
        self.runtime.memory.invalidate_cache(self, self.node_id)

    def join(self, thread: JavaThread) -> Generator:
        """``Thread.join()``: wait for *thread* and see its writes."""
        yield from self._flush()
        spans = self._spans
        if spans is not None:
            spans.begin(self.thread.name, "join")
        yield thread.marcel.completion_event
        if spans is not None:
            spans.end(self.thread.name, self.runtime.engine.now)
        sanitizer = self.runtime.sanitizer
        if sanitizer is not None:
            sanitizer.note_join(self.node_id, thread)
        self.runtime.memory.invalidate_cache(self, self.node_id)
        self.runtime.run_stats.threads.joined += 1
        return thread.result

    def sleep(self, seconds: float) -> Generator:
        """``Thread.sleep()`` in virtual time."""
        check_non_negative("seconds", seconds)
        yield from self._flush()
        spans = self._spans
        if spans is not None:
            spans.begin(self.thread.name, "sleep")
        yield self.runtime.engine.timeout(seconds)
        if spans is not None:
            spans.end(self.thread.name, self.runtime.engine.now)

    # ------------------------------------------------------------------
    # thread management
    # ------------------------------------------------------------------
    def spawn(
        self,
        body: Callable,
        *args: Any,
        node: int | None = None,
        name: str | None = None,
        index: int | None = None,
    ) -> JavaThread:
        """Create and start a new Java thread.

        The target node is chosen by the runtime's load balancer unless
        *node* is given.  The creation cost (including the remote-creation
        RPC when the target is another node) is charged to the creator.
        """
        thread = self.runtime.create_thread(body, args, node=node, name=name, index=index)
        sanitizer = self.runtime.sanitizer
        if sanitizer is not None:
            sanitizer.note_spawn(self.node_id, thread.node_id)
        remote = thread.node_id != self.node_id
        self.charge_wait(self.runtime.cost_model.thread_create_seconds(remote=remote))
        if remote:
            self.runtime.comm.post(
                self.node_id,
                thread.node_id,
                self.runtime.comm.SERVICE_SPAWN_THREAD,
                payload={"name": thread.name},
                request_bytes=256,
            )
            self.runtime.run_stats.threads.remote_created += 1
        return thread

    def migrate(self, destination_node: int) -> Generator:
        """Migrate this thread to *destination_node* (PM2 thread migration)."""
        yield from self._flush()
        spans = self._spans
        if spans is not None:
            spans.begin(self.thread.name, "migration")
        sanitizer = self.runtime.sanitizer
        origin = self.node_id
        yield from self.runtime.migration.migrate(self.thread.marcel, destination_node)
        if spans is not None:
            spans.end(self.thread.name, self.runtime.engine.now)
        if sanitizer is not None:
            sanitizer.note_migrate(origin, self.node_id)
        self.runtime.run_stats.threads.migrations += 1

    # ------------------------------------------------------------------
    # Java API natives
    # ------------------------------------------------------------------
    def arraycopy(self, src, src_pos, dst, dst_pos, length) -> None:
        """``System.arraycopy``."""
        self.runtime.javaapi.arraycopy(self, src, src_pos, dst, dst_pos, length)

    def math(self, name: str, *args) -> float:
        """``java.lang.Math`` native."""
        return self.runtime.javaapi.math(self, name, *args)

    def println(self, message: str) -> None:
        """``System.out.println``."""
        self.runtime.javaapi.println(self, message)

    def current_time_millis(self) -> int:
        """``System.currentTimeMillis`` (virtual)."""
        return self.runtime.javaapi.current_time_millis(self)
