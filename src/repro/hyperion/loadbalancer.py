"""Thread distribution policies.

The paper's load balancer "handles the distribution of newly created threads
to nodes" and "currently uses a round-robin thread distribution algorithm"
(Table 1).  Round-robin is therefore the default; block and random policies
are provided for the load-balancer ablation (A4 in DESIGN.md).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.util.validation import check_positive


class LoadBalancer(ABC):
    """Chooses the node a newly created Java thread runs on."""

    def __init__(self, num_nodes: int):
        check_positive("num_nodes", num_nodes)
        self.num_nodes = int(num_nodes)
        self.assignments: list[int] = []

    @abstractmethod
    def _select(self, index: int) -> int:
        """Node for the *index*-th thread created."""

    def next_node(self) -> int:
        """Assign the next thread and record the decision."""
        node = self._select(len(self.assignments))
        if not 0 <= node < self.num_nodes:
            raise RuntimeError(f"balancer selected invalid node {node}")
        self.assignments.append(node)
        return node

    def threads_per_node(self) -> dict[int, int]:
        """Histogram of the assignments made so far."""
        counts = {n: 0 for n in range(self.num_nodes)}
        for node in self.assignments:
            counts[node] += 1
        return counts


class RoundRobinBalancer(LoadBalancer):
    """Thread *i* goes to node ``i % num_nodes`` (the paper's policy)."""

    name = "round_robin"

    def _select(self, index: int) -> int:
        return index % self.num_nodes


class BlockBalancer(LoadBalancer):
    """Consecutive threads are packed onto the same node in blocks.

    With ``expected_threads`` equal to the number of nodes this coincides
    with round-robin; with more threads than nodes it keeps neighbouring
    thread indices (which usually share data) on the same node.
    """

    name = "block"

    def __init__(self, num_nodes: int, expected_threads: int | None = None):
        super().__init__(num_nodes)
        self.expected_threads = expected_threads

    def _select(self, index: int) -> int:
        if not self.expected_threads:
            return index % self.num_nodes
        block = max(1, -(-self.expected_threads // self.num_nodes))
        return min(index // block, self.num_nodes - 1)


class RandomBalancer(LoadBalancer):
    """Uniformly random placement with a fixed seed (for the ablation)."""

    name = "random"

    def __init__(self, num_nodes: int, seed: int = 0):
        super().__init__(num_nodes)
        self._rng = random.Random(seed)

    def _select(self, index: int) -> int:
        return self._rng.randrange(self.num_nodes)


_POLICIES = {
    RoundRobinBalancer.name: RoundRobinBalancer,
    BlockBalancer.name: BlockBalancer,
    RandomBalancer.name: RandomBalancer,
}


def create_balancer(name: str, num_nodes: int, **kwargs) -> LoadBalancer:
    """Instantiate a load balancer by policy name."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise KeyError(f"unknown load-balancer policy {name!r}; known: {known}") from None
    return cls(num_nodes, **kwargs)


def available_policies() -> list[str]:
    """Names of the registered load-balancer policies."""
    return sorted(_POLICIES)
