"""Java monitors (synchronized blocks, wait/notify) over the cluster.

Every Java object owns a monitor.  The monitor's state conceptually lives on
the object's home node, so entering a monitor of a remote object costs a
round trip to that node (plus queueing if the monitor is held), whereas
entering a locally homed monitor only costs the local fast path.  The
*memory* side effects of monitor operations — invalidating the node cache on
entry and flushing modifications on exit — are performed by the thread
context (:class:`repro.hyperion.threads.JavaThreadContext`), not here; this
module only provides mutual exclusion, queueing and wait/notify.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.cluster.costs import CostModel
from repro.cluster.topology import Topology
from repro.core.stats import MonitorStats
from repro.simulation.engine import Engine
from repro.simulation.events import SimEvent
from repro.simulation.resources import Lock


class Monitor:
    """The monitor of one Java object: a FIFO lock plus a wait set."""

    __slots__ = ("oid", "home_node", "lock", "wait_set")

    def __init__(self, engine: Engine, oid: int, home_node: int):
        self.oid = oid
        self.home_node = home_node
        self.lock = Lock(engine, name=f"monitor:{oid}")
        self.wait_set: list[SimEvent] = []

    @property
    def locked(self) -> bool:
        """True while some thread owns the monitor."""
        return self.lock.locked


class MonitorManager:
    """Creates monitors lazily and implements enter/exit/wait/notify."""

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        cost_model: CostModel,
        stats: MonitorStats | None = None,
    ):
        self.engine = engine
        self.topology = topology
        self.cost_model = cost_model
        self.stats = stats if stats is not None else MonitorStats()
        #: optional telemetry hook (duck-typed: ``observe_acquire(latency,
        #: contended)``, see :class:`repro.obs.ledger.MonitorInstrument`);
        #: strictly out-of-band — it only reads the clock around the acquire.
        self.telemetry = None
        self._monitors: dict[int, Monitor] = {}

    # ------------------------------------------------------------------
    def monitor_for(self, obj) -> Monitor:
        """The (lazily created) monitor of *obj*."""
        monitor = self._monitors.get(obj.oid)
        if monitor is None:
            monitor = Monitor(self.engine, obj.oid, obj.home_node)
            self._monitors[obj.oid] = monitor
        return monitor

    def _charge_entry_cost(self, ctx, monitor: Monitor) -> None:
        if monitor.home_node == ctx.node_id:
            ctx.charge_cpu(self.cost_model.monitor_local_seconds())
        else:
            self.stats.remote_enters += 1
            ctx.charge_wait(self.cost_model.monitor_remote_seconds())

    def _charge_exit_cost(self, ctx, monitor: Monitor) -> None:
        if monitor.home_node == ctx.node_id:
            ctx.charge_cpu(self.cost_model.monitor_local_seconds())
        else:
            ctx.charge_wait(self.cost_model.monitor_remote_seconds())

    # ------------------------------------------------------------------
    # operations (all used through ``yield from`` except notify)
    # ------------------------------------------------------------------
    def enter(self, ctx, obj) -> Generator:
        """Acquire *obj*'s monitor for the thread behind *ctx*."""
        monitor = self.monitor_for(obj)
        self.stats.enters += 1
        contended = monitor.locked
        if contended:
            self.stats.contended_enters += 1
        self._charge_entry_cost(ctx, monitor)
        telemetry = self.telemetry
        if telemetry is None:
            yield monitor.lock.acquire(owner=ctx)
        else:
            started = self.engine.now
            yield monitor.lock.acquire(owner=ctx)
            telemetry.observe_acquire(self.engine.now - started, contended)

    def exit(self, ctx, obj) -> None:
        """Release *obj*'s monitor (the caller must own it)."""
        monitor = self.monitor_for(obj)
        if not monitor.locked:
            raise RuntimeError(
                f"monitor exit on object {obj.oid} which is not locked"
            )
        self._charge_exit_cost(ctx, monitor)
        monitor.lock.release()

    def wait(self, ctx, obj) -> Generator:
        """``Object.wait()``: release the monitor, sleep, re-acquire on notify."""
        monitor = self.monitor_for(obj)
        if not monitor.locked:
            raise RuntimeError(f"wait() on object {obj.oid} without holding its monitor")
        self.stats.waits += 1
        wake = SimEvent(self.engine, name=f"wait:{obj.oid}")
        monitor.wait_set.append(wake)
        self._charge_exit_cost(ctx, monitor)
        monitor.lock.release()
        yield wake
        self.stats.enters += 1
        contended = monitor.locked
        if contended:
            self.stats.contended_enters += 1
        self._charge_entry_cost(ctx, monitor)
        telemetry = self.telemetry
        if telemetry is None:
            yield monitor.lock.acquire(owner=ctx)
        else:
            started = self.engine.now
            yield monitor.lock.acquire(owner=ctx)
            telemetry.observe_acquire(self.engine.now - started, contended)

    def notify(self, ctx, obj) -> int:
        """``Object.notify()``: wake one waiter; returns the number woken."""
        monitor = self.monitor_for(obj)
        self.stats.notifies += 1
        if not monitor.wait_set:
            return 0
        monitor.wait_set.pop(0).succeed(None)
        return 1

    def notify_all(self, ctx, obj) -> int:
        """``Object.notifyAll()``: wake every waiter; returns the number woken."""
        monitor = self.monitor_for(obj)
        self.stats.notifies += 1
        woken = len(monitor.wait_set)
        waiters, monitor.wait_set = monitor.wait_set, []
        for waiter in waiters:
            waiter.succeed(None)
        return woken

    # ------------------------------------------------------------------
    def active_monitors(self) -> int:
        """Number of monitors that have been materialised."""
        return len(self._monitors)
