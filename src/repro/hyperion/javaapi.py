"""The Java API subsystem: the subset of JDK natives the benchmarks use.

Hyperion compiles ordinary API classes with its java2c translator and only
implements natives by hand (paper Table 1, "we use Sun's JDK 1.1").  The
benchmarks need a handful of them: ``System.arraycopy``, the ``java.lang.Math``
entry points, ``System.currentTimeMillis`` and console output.  Each native
charges a realistic CPU cost to the calling thread.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.util.validation import check_non_negative

#: cycle costs of the Math natives on the paper-era x86 FPUs
_MATH_CYCLES: dict[str, float] = {
    "sqrt": 35.0,
    "sin": 60.0,
    "cos": 60.0,
    "tan": 80.0,
    "exp": 70.0,
    "log": 70.0,
    "pow": 90.0,
    "atan": 70.0,
    "abs": 2.0,
    "floor": 4.0,
    "ceil": 4.0,
}

_MATH_FUNCTIONS: dict[str, Callable[..., float]] = {
    "sqrt": math.sqrt,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "log": math.log,
    "pow": math.pow,
    "atan": math.atan,
    "abs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
}


class JavaApiSubsystem:
    """Native-method implementations, charging costs through a thread context."""

    #: cycles charged per element copied by System.arraycopy (on top of the
    #: get/put accounting done by the memory subsystem)
    ARRAYCOPY_CYCLES_PER_ELEMENT = 1.5

    #: cycles charged for one System.out.println call (formatting + syscall)
    PRINTLN_CYCLES = 4000.0

    def __init__(self):
        self.console: list[str] = []
        self.natives_called: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _count(self, name: str) -> None:
        self.natives_called[name] = self.natives_called.get(name, 0) + 1

    # ------------------------------------------------------------------
    def arraycopy(self, ctx, src, src_pos: int, dst, dst_pos: int, length: int) -> None:
        """``System.arraycopy``: element-wise copy between Java arrays."""
        check_non_negative("length", length)
        self._count("System.arraycopy")
        if length == 0:
            return
        values = ctx.aget_range(src, src_pos, src_pos + length)
        ctx.aput_range(dst, dst_pos, dst_pos + length, values)
        ctx.compute(cycles=self.ARRAYCOPY_CYCLES_PER_ELEMENT * length)

    def math(self, ctx, name: str, *args) -> float:
        """``java.lang.Math`` natives (sqrt, sin, cos, ...)."""
        try:
            cycles = _MATH_CYCLES[name]
            fn = _MATH_FUNCTIONS[name]
        except KeyError:
            known = ", ".join(sorted(_MATH_CYCLES))
            raise KeyError(f"unsupported Math native {name!r}; known: {known}") from None
        self._count(f"Math.{name}")
        ctx.compute(cycles=cycles)
        return fn(*args)

    def current_time_millis(self, ctx) -> int:
        """``System.currentTimeMillis`` in *virtual* time."""
        self._count("System.currentTimeMillis")
        ctx.compute(cycles=200.0)
        return int(ctx.now * 1000.0)

    def nano_time(self, ctx) -> int:
        """``System.nanoTime`` in *virtual* time."""
        self._count("System.nanoTime")
        ctx.compute(cycles=200.0)
        return int(ctx.now * 1e9)

    def println(self, ctx, message: str) -> None:
        """``System.out.println``: captured in :attr:`console`."""
        self._count("System.out.println")
        ctx.compute(cycles=self.PRINTLN_CYCLES)
        self.console.append(str(message))

    def identity_hash_code(self, ctx, obj) -> int:
        """``System.identityHashCode``."""
        self._count("System.identityHashCode")
        ctx.compute(cycles=10.0)
        return obj.oid
