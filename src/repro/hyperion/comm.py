"""Hyperion's communication subsystem.

A thin layer over PM2's RPCs (paper Table 1: "The interface is based upon
message handlers being asynchronously invoked on the receiving end").  The
runtime registers its internal services here — remote thread creation, the
barrier coordinator, and the DSM's control messages are counted against the
same statistics — and applications may register their own handlers.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.pm2.rpc import OneWayHandler, RpcHandler, RpcStats, RpcSystem


class CommunicationSubsystem:
    """Named message handlers on every node, invoked through PM2 RPCs."""

    #: service names used internally by the runtime
    SERVICE_SPAWN_THREAD = "hyperion.spawn_thread"
    SERVICE_BARRIER = "hyperion.barrier"
    SERVICE_USER_PREFIX = "user."

    def __init__(self, rpc: RpcSystem):
        self.rpc = rpc
        self.registered_services: list[str] = []

    # ------------------------------------------------------------------
    @property
    def stats(self) -> RpcStats:
        """Communication statistics (shared with the RPC layer)."""
        return self.rpc.stats

    def register_handler(self, node: int, name: str, handler: RpcHandler) -> None:
        """Register a request/reply handler for *name* on *node*."""
        self.rpc.register_service(node, name, handler)
        self.registered_services.append(name)

    def register_oneway(self, node: int, name: str, handler: OneWayHandler) -> None:
        """Register a one-way message handler for *name* on *node*."""
        self.rpc.register_oneway(node, name, handler)
        self.registered_services.append(name)

    # ------------------------------------------------------------------
    def invoke(
        self, src: int, dst: int, name: str, payload: Any = None, request_bytes: int = 64
    ) -> Generator:
        """Invoke a request/reply handler; use through ``yield from``."""
        reply = yield self.rpc.invoke(src, dst, name, payload, request_bytes)
        return reply

    def post(
        self, src: int, dst: int, name: str, payload: Any = None, request_bytes: int = 64
    ) -> None:
        """Send a one-way message (fire and forget)."""
        self.rpc.post(src, dst, name, payload, request_bytes)

    def broadcast(
        self, src: int, name: str, payload: Any = None, request_bytes: int = 64
    ) -> None:
        """Post a one-way message to every node except the sender."""
        for dst in range(self.rpc.topology.num_nodes):
            if dst != src:
                self.rpc.post(src, dst, name, payload, request_bytes)
