"""Prometheus text exposition rendering for :mod:`repro.obs.metrics`.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` (or its ``to_dict``
payload) in the text format scraped by Prometheus (version 0.0.4): a
``# HELP``/``# TYPE`` header per family, one sample line per label set,
and the ``_bucket``/``_sum``/``_count`` expansion with cumulative
``le``-labelled buckets for histograms.  Output is deterministic — the
registry already sorts families and series.
"""

from __future__ import annotations

__all__ = ["CONTENT_TYPE", "render_metrics"]

#: Content type served by ``GET /metrics`` on the sweep service.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    pairs.extend(f'{key}="{_escape_label_value(value)}"' for key, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_metrics(payload) -> str:
    """Render a registry or its ``to_dict`` payload as Prometheus text."""
    if hasattr(payload, "to_dict"):
        payload = payload.to_dict()
    lines: list[str] = []
    for name, family in sorted(payload.get("families", {}).items()):
        kind = family.get("kind", "untyped")
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            buckets = family.get("buckets", ())
            for entry in family.get("series", ()):
                labels = entry["labels"]
                cumulative = 0
                for bound, count in zip(buckets, entry["counts"]):
                    cumulative += count
                    label_text = _format_labels(
                        labels, (("le", _format_value(bound)),)
                    )
                    lines.append(
                        f"{name}_bucket{label_text} {_format_value(cumulative)}"
                    )
                label_text = _format_labels(labels, (("le", "+Inf"),))
                lines.append(
                    f"{name}_bucket{label_text} {_format_value(entry['count'])}"
                )
                plain = _format_labels(labels)
                lines.append(f"{name}_sum{plain} {_format_value(entry['sum'])}")
                lines.append(f"{name}_count{plain} {_format_value(entry['count'])}")
        else:
            for entry in family.get("series", ()):
                label_text = _format_labels(entry["labels"])
                lines.append(f"{name}{label_text} {_format_value(entry['value'])}")
    return "\n".join(lines) + "\n" if lines else ""
