"""Chrome trace-event JSON export so a telemetry ledger opens in Perfetto.

Converts the ``spans`` (and optionally ``host.stages``) sections of a
:class:`~repro.obs.ledger.RunTelemetry` payload into the Trace Event
Format understood by ``chrome://tracing`` and https://ui.perfetto.dev:
complete (``"ph": "X"``) events with microsecond timestamps.  Virtual-time
spans map 1 simulated second to 1e6 trace microseconds on pid 0 (one tid
per simulated thread, in spawn order); host-side harness stages go to
pid 1.  Virtual events are deterministic; host events carry wall-clock
durations and are excluded from byte-identity comparisons.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["chrome_trace_events", "render_chrome_trace", "write_chrome_trace"]

_VIRTUAL_PID = 0
_HOST_PID = 1
_MICROS = 1e6


def chrome_trace_events(telemetry, include_host: bool = True) -> list[dict]:
    """Build the trace-event list for a :class:`~repro.obs.ledger.RunTelemetry`
    (or its ``to_dict`` payload)."""
    if not isinstance(telemetry, dict):
        telemetry = telemetry.to_dict()
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _VIRTUAL_PID,
            "tid": 0,
            "args": {"name": f"virtual:{telemetry.get('label', 'cell')}"},
        }
    ]
    spans = telemetry.get("spans") or {}
    tids = {
        track: index for index, track in enumerate(sorted(spans.get("tracks", {})))
    }
    for track, tid in sorted(tids.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _VIRTUAL_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for record in spans.get("records", ()):
        track, phase, start, end = record
        events.append(
            {
                "ph": "X",
                "name": phase,
                "cat": "virtual",
                "pid": _VIRTUAL_PID,
                "tid": tids.get(track, len(tids)),
                "ts": start * _MICROS,
                "dur": (end - start) * _MICROS,
            }
        )
    if include_host:
        host = telemetry.get("host") or {}
        stages = [
            stage
            for stage in host.get("stages", ())
            if stage.get("start") is not None and stage.get("end") is not None
        ]
        if stages:
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": _HOST_PID,
                    "tid": 0,
                    "args": {"name": "host:harness"},
                }
            )
            for stage in stages:
                events.append(
                    {
                        "ph": "X",
                        "name": stage["name"],
                        "cat": "host",
                        "pid": _HOST_PID,
                        "tid": 0,
                        "ts": stage["start"] * _MICROS,
                        "dur": (stage["end"] - stage["start"]) * _MICROS,
                    }
                )
    return events


def render_chrome_trace(telemetry, include_host: bool = True) -> str:
    payload = {
        "traceEvents": chrome_trace_events(telemetry, include_host=include_host),
        "displayTimeUnit": "ms",
    }
    return json.dumps(payload, sort_keys=True)


def write_chrome_trace(
    path: str | Path, telemetry, include_host: bool = True
) -> Path:
    path = Path(path)
    path.write_text(render_chrome_trace(telemetry, include_host=include_host))
    return path
