"""Virtual-time span tracing over the simulated run.

A :class:`SpanTracer` partitions every simulated thread's lifetime into
phase spans — ``compute``, ``fault_service``, ``monitor_wait``,
``barrier``, ``migration``, ``join``, ``sleep``, ``idle`` — using a
per-track *cursor*: each ``mark(track, phase, now)`` closes the interval
``[cursor, now]`` under ``phase`` and advances the cursor.  Because a
simulated thread's virtual clock only advances across its own yields, and
every yield point in :mod:`repro.hyperion.threads` is bracketed by a mark,
the spans of a track are an exact partition of ``[spawn, finish]`` — the
per-phase totals sum to the thread's lifetime by construction.

Attribution of flushed charges: the thread context accumulates pending
CPU/wait and pays both at ``_flush()`` boundaries (the tracer must never
split that payment into extra yields — it would change scheduling under
contention and break determinism).  Instead, a blocking operation opens a
*frame* (``begin``) that snapshots the pending amounts carried in from
application code; when the flush pays, :meth:`flush_cpu`/:meth:`flush_wait`
split the single interval arithmetically — the carried portion keeps the
default attribution (``compute``/``fault_service``), the remainder goes to
the frame's phase.  CPU-queueing delay (more threads than cores) folds
into the phase of the charge that experienced it.

The span *record* list is bounded (``max_spans``, with a ``dropped``
counter, mirroring :class:`repro.simulation.trace.TraceRecorder`); the
per-track phase totals are maintained independently and stay exact no
matter how many records are dropped.
"""

from __future__ import annotations

__all__ = ["SpanTracer", "DEFAULT_MAX_SPANS", "PHASES"]

DEFAULT_MAX_SPANS = 200_000

#: Known phases, for documentation and table ordering; the tracer accepts
#: any phase string.
PHASES = (
    "compute",
    "fault_service",
    "monitor_wait",
    "barrier",
    "migration",
    "join",
    "sleep",
    "idle",
)

_COMPUTE_SLOT = 1
_WAIT_SLOT = 2


class SpanTracer:
    """Cursor-based per-track phase spans with exact totals."""

    __slots__ = (
        "max_spans",
        "records",
        "dropped",
        "_cursors",
        "_frames",
        "_phases",
        "_starts",
        "_ends",
    )

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.records: list[tuple[str, str, float, float]] = []
        self.dropped = 0
        self._cursors: dict[str, float] = {}
        # frame: [phase, carried_cpu, carried_wait]
        self._frames: dict[str, list] = {}
        self._phases: dict[str, dict[str, float]] = {}
        self._starts: dict[str, float] = {}
        self._ends: dict[str, float] = {}

    def register(self, track: str, now: float) -> None:
        if track in self._cursors:
            return
        self._cursors[track] = now
        self._starts[track] = now
        self._phases[track] = {}

    def mark(self, track: str, phase: str, now: float) -> None:
        start = self._cursors.get(track)
        if start is None:
            self.register(track, now)
            return
        if now <= start:
            return
        self._cursors[track] = now
        phases = self._phases[track]
        phases[phase] = phases.get(phase, 0.0) + (now - start)
        if len(self.records) < self.max_spans:
            self.records.append((track, phase, start, now))
        else:
            self.dropped += 1

    def begin(
        self,
        track: str,
        phase: str,
        carried_cpu: float = 0.0,
        carried_wait: float = 0.0,
    ) -> None:
        """Open a blocking-phase frame, snapshotting carried-in charges."""
        self._frames[track] = [phase, carried_cpu, carried_wait]

    def end(self, track: str, now: float) -> None:
        """Close the open frame, attributing the residual gap to it."""
        frame = self._frames.pop(track, None)
        if frame is not None:
            self.mark(track, frame[0], now)

    def flush_cpu(self, track: str, cpu: float, now: float) -> None:
        self._flush_charge(track, cpu, now, _COMPUTE_SLOT, "compute")

    def flush_wait(self, track: str, wait: float, now: float) -> None:
        self._flush_charge(track, wait, now, _WAIT_SLOT, "fault_service")

    def _flush_charge(
        self, track: str, amount: float, now: float, slot: int, default_phase: str
    ) -> None:
        frame = self._frames.get(track)
        if frame is None:
            self.mark(track, default_phase, now)
            return
        carried = frame[slot]
        if carried <= 0.0:
            self.mark(track, frame[0], now)
            return
        if carried >= amount:
            frame[slot] = carried - amount
            self.mark(track, default_phase, now)
            return
        frame[slot] = 0.0
        boundary = now - (amount - carried)
        self.mark(track, default_phase, boundary)
        self.mark(track, frame[0], now)

    def finish(self, track: str, now: float) -> None:
        self._frames.pop(track, None)
        self.mark(track, "idle", now)
        self._ends[track] = now

    def phase_totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for phases in self._phases.values():
            for phase, seconds in phases.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return {phase: totals[phase] for phase in sorted(totals)}

    def track_totals(self, track: str) -> dict[str, float]:
        phases = self._phases.get(track, {})
        return {phase: phases[phase] for phase in sorted(phases)}

    def to_dict(self) -> dict:
        tracks = {}
        for track in sorted(self._phases):
            tracks[track] = {
                "start": self._starts[track],
                "end": self._ends.get(track, self._cursors[track]),
                "phases": self.track_totals(track),
            }
        return {
            "dropped": self.dropped,
            "max_spans": self.max_spans,
            "phases": self.phase_totals(),
            "records": [list(record) for record in self.records],
            "tracks": tracks,
        }
