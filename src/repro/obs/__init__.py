"""Out-of-band telemetry: metrics, virtual-time spans, and run ledgers.

This package is the observability layer described in DESIGN.md.  It is
strictly *out-of-band*: nothing in here may change a byte of
:meth:`repro.hyperion.runtime.ExecutionReport.to_dict` or any other pinned
serialisation.  Telemetry observes the simulation (virtual time) and the
harness (host time) without participating in either.

Three pillars:

* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket histograms
  in a :class:`~repro.obs.metrics.MetricsRegistry` with a deterministic
  ``to_dict`` and an additive ``merge`` for sweep-level aggregation.
* :mod:`repro.obs.spans` — per-thread virtual-time phase spans (compute,
  fault service, monitor wait, barrier, migration, ...) recorded by a
  :class:`~repro.obs.spans.SpanTracer`, exportable as Chrome trace-event
  JSON via :mod:`repro.obs.chrometrace` so a run opens in Perfetto.
* :mod:`repro.obs.ledger` — :class:`~repro.obs.ledger.RunTelemetry`, the
  versioned per-cell artifact bundling metrics + spans + host numbers,
  built by the :class:`~repro.obs.ledger.TelemetryCollector` a runtime
  carries when an :class:`~repro.harness.spec.ExperimentSpec` sets
  ``telemetry=True``.

:mod:`repro.obs.promtext` renders any registry (or its ``to_dict``
payload) as Prometheus text exposition format; ``GET /metrics`` on the
sweep service serves it.

``ledger`` pulls in :mod:`repro.perf` (host clock, ``CellProfile``), which
itself imports the harness — so it is re-exported lazily here to keep
``repro.obs.metrics`` importable from low-level modules like the result
store without import cycles.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.promtext import render_metrics
from repro.obs.spans import SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunTelemetry",
    "SpanTracer",
    "TelemetryCollector",
    "render_metrics",
]

_LAZY = {"RunTelemetry", "TelemetryCollector"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.obs import ledger

        return getattr(ledger, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
