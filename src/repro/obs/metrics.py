"""Counters, gauges, and fixed-bucket histograms with deterministic output.

The registry is deliberately tiny and dependency-free: metric families are
plain dicts keyed by a canonical (sorted) label tuple, ``to_dict`` iterates
everything in sorted order so equal runs produce byte-identical payloads,
and ``merge`` folds one ``to_dict`` payload into a live registry so sweep
jobs and the service can aggregate per-cell ledgers without sharing
objects across processes.

Merge semantics: counters and histograms are additive; gauges merge by
``max`` (every gauge in this repo is a peak or a level where the maximum
across shards is the meaningful aggregate, e.g. peak event-queue depth).

Values observed here are either *virtual* seconds (simulated time — exact,
deterministic floats) or host-side counts; nothing in this module reads a
clock itself.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_HOST_SECONDS_BUCKETS",
]

#: Fixed buckets for virtual-time latencies (page fetches, monitor
#: acquisition).  Round-trips on the simulated interconnects live in the
#: 1e-5..1e-3 s range; the tails catch pathological contention.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6,
    2.5e-6,
    5e-6,
    1e-5,
    2.5e-5,
    5e-5,
    1e-4,
    2.5e-4,
    5e-4,
    1e-3,
    2.5e-3,
    5e-3,
    1e-2,
    2.5e-2,
    1e-1,
    1.0,
)

#: Fixed buckets for host-side durations (shard wall time).
DEFAULT_HOST_SECONDS_BUCKETS: tuple[float, ...] = (
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """Monotonically increasing metric family (one value per label set)."""

    kind = "counter"
    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._series.values())

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ],
        }


class Gauge:
    """Point-in-time level; merges by ``max`` across shards."""

    kind = "gauge"
    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = value

    def set_max(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        held = self._series.get(key)
        if held is None or value > held:
            self._series[key] = value

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ],
        }


class Histogram:
    """Fixed-bucket histogram; buckets are upper bounds, +Inf is implicit."""

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "_series")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self._series: dict[_LabelKey, list] = {}

    def _slot(self, key: _LabelKey) -> list:
        series = self._series.get(key)
        if series is None:
            series = [[0] * len(self.buckets), 0.0, 0]
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: object) -> None:
        series = self._slot(_label_key(labels))
        index = bisect_left(self.buckets, value)
        if index < len(self.buckets):
            series[0][index] += 1
        series[1] += value
        series[2] += 1

    def merge_series(
        self, labels: dict[str, object], counts: list[int], total: float, count: int
    ) -> None:
        series = self._slot(_label_key(labels))
        for index, bucket_count in enumerate(counts[: len(self.buckets)]):
            series[0][index] += bucket_count
        series[1] += total
        series[2] += count

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return 0 if series is None else series[2]

    def sum(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        return 0.0 if series is None else series[1]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "series": [
                {
                    "labels": dict(key),
                    "counts": list(series[0]),
                    "sum": series[1],
                    "count": series[2],
                }
                for key, series in sorted(self._series.items())
            ],
        }


class MetricsRegistry:
    """Named metric families with deterministic export and additive merge."""

    __slots__ = ("_families",)

    def __init__(self) -> None:
        self._families: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._families)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        for name in sorted(self._families):
            yield self._families[name]

    def _get(self, name: str, kind: type, factory) -> Counter | Gauge | Histogram:
        family = self._families.get(name)
        if family is None:
            family = factory()
            self._families[name] = family
        elif not isinstance(family, kind):
            raise TypeError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind.kind}"  # type: ignore[attr-defined]
            )
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, help, buckets))

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._families.get(name)

    def to_dict(self) -> dict:
        return {
            "families": {
                name: family.to_dict()
                for name, family in sorted(self._families.items())
            }
        }

    def merge(self, payload: dict) -> None:
        """Fold a ``to_dict`` payload into this registry.

        Counters and histograms add; gauges keep the maximum.  Families
        absent here are created with the payload's help text and buckets.
        """
        for name, family in sorted(payload.get("families", {}).items()):
            kind = family.get("kind")
            help_text = family.get("help", "")
            if kind == "counter":
                counter = self.counter(name, help_text)
                for entry in family.get("series", ()):
                    counter.inc(entry["value"], **entry["labels"])
            elif kind == "gauge":
                gauge = self.gauge(name, help_text)
                for entry in family.get("series", ()):
                    gauge.set_max(entry["value"], **entry["labels"])
            elif kind == "histogram":
                histogram = self.histogram(
                    name, help_text, tuple(family.get("buckets", ()))
                )
                for entry in family.get("series", ()):
                    histogram.merge_series(
                        entry["labels"],
                        entry["counts"],
                        entry["sum"],
                        entry["count"],
                    )
            else:  # pragma: no cover - forward-compat guard
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
