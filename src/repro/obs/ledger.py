"""The run ledger: one versioned telemetry artifact per executed cell.

:class:`TelemetryCollector` is what a :class:`~repro.hyperion.runtime.
HyperionRuntime` carries when the spec opts into telemetry.  It owns the
cell's :class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.spans.SpanTracer` plus three tiny duck-typed
*instruments* the hot layers call without importing this package:

* the engine calls ``metrics.record_event(kind, depth)`` per dispatched
  event (the no-telemetry fast path is untouched);
* the page manager calls ``telemetry.observe_fetch(...)`` per fetch group
  with the virtual round-trip latency;
* the monitor manager calls ``telemetry.observe_acquire(...)`` with the
  virtual time spent blocked on a lock acquire.

Everything else — per-node fault/fetch/busy counters, island crossings,
monitor/thread totals — is snapshotted once at :meth:`finalize` from the
:class:`~repro.core.stats.RunStats` the run already maintains, so the
simulation pays nothing for those families.

:class:`RunTelemetry` is the resulting artifact: metrics + spans + host
numbers (shaped by :class:`~repro.perf.profiler.CellProfile`) + an
optional trace summary, versioned and JSON-round-trippable.  It rides on
``ExecutionReport.telemetry`` — a host-side field like
``events_processed`` — and is persisted by the result store *next to*
(never inside) the pinned report entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.obs.spans import DEFAULT_MAX_SPANS, SpanTracer
from repro.perf.clock import host_clock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.spec import ExperimentSpec
    from repro.hyperion.runtime import ExecutionReport, HyperionRuntime

__all__ = [
    "RunTelemetry",
    "TelemetryCollector",
    "TELEMETRY_VERSION",
    "phase_table",
]

TELEMETRY_VERSION = 1


class EngineInstrument:
    """Per-event hook the engine calls on its (telemetry-only) slow path."""

    __slots__ = ("events", "queue_depth")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.events = registry.counter(
            "sim_events_dispatched_total", "Simulation events dispatched by kind."
        )
        self.queue_depth = registry.gauge(
            "sim_event_queue_depth_peak", "Peak pending-event queue depth."
        )

    def record_event(self, kind: str, depth: int) -> None:
        self.events.inc(1, kind=kind)
        self.queue_depth.set_max(depth)


class DsmInstrument:
    """Inline DSM hook: virtual-time page-fetch latency by island scope."""

    __slots__ = ("fetch_latency",)

    def __init__(self, registry: MetricsRegistry) -> None:
        self.fetch_latency = registry.histogram(
            "dsm_fetch_latency_virtual_seconds",
            "Virtual round-trip latency of page-fetch groups by island scope.",
            DEFAULT_LATENCY_BUCKETS,
        )

    def observe_fetch(
        self, intra_island: bool, latency: float, pages: int, nbytes: int
    ) -> None:
        self.fetch_latency.observe(
            latency, scope="intra" if intra_island else "inter"
        )


class MonitorInstrument:
    """Inline monitor hook: virtual time blocked acquiring a monitor lock."""

    __slots__ = ("acquire_latency",)

    def __init__(self, registry: MetricsRegistry) -> None:
        self.acquire_latency = registry.histogram(
            "monitor_acquire_virtual_seconds",
            "Virtual time spent blocked acquiring a monitor lock.",
            DEFAULT_LATENCY_BUCKETS,
        )

    def observe_acquire(self, latency: float, contended: bool) -> None:
        self.acquire_latency.observe(
            latency, contended="true" if contended else "false"
        )


class TelemetryCollector:
    """Everything one telemetry-enabled runtime records, pre-finalize."""

    __slots__ = (
        "registry",
        "spans",
        "engine_instrument",
        "dsm_instrument",
        "monitor_instrument",
        "host_stages",
        "_epoch",
    )

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.registry = MetricsRegistry()
        self.spans = SpanTracer(max_spans)
        self.engine_instrument = EngineInstrument(self.registry)
        self.dsm_instrument = DsmInstrument(self.registry)
        self.monitor_instrument = MonitorInstrument(self.registry)
        self.host_stages: list[dict] = []
        self._epoch = host_clock()

    def attach(self, runtime: "HyperionRuntime") -> None:
        """Point the hot layers' telemetry hooks at this collector."""
        runtime.engine.metrics = self.engine_instrument
        runtime.page_manager.telemetry = self.dsm_instrument
        runtime.monitors.telemetry = self.monitor_instrument

    # ------------------------------------------------------------------
    def note_stage(self, name: str, seconds: float) -> None:
        """Record a duration-only harness stage (no epoch-relative span)."""
        self.host_stages.append({"name": name, "seconds": seconds})

    def begin_stage(self, name: str) -> float:
        return host_clock()

    def end_stage(self, name: str, started: float) -> None:
        now = host_clock()
        self.host_stages.append(
            {
                "name": name,
                "start": started - self._epoch,
                "end": now - self._epoch,
                "seconds": now - started,
            }
        )

    # ------------------------------------------------------------------
    def _snapshot_stats(self, report: "ExecutionReport") -> None:
        """Fold the run's existing counters into metric families."""
        registry = self.registry
        stats = report.stats
        dsm = stats.dsm

        registry.gauge(
            "sim_virtual_seconds", "Virtual seconds the simulated execution took."
        ).set(stats.execution_seconds)

        # The ``node`` label carries whatever key the manager attributes
        # stats under: exact node ids on paper-sized runs, island indices on
        # runs past PageManager.NODE_STAT_CAP (see ``stat_node``).
        fetches = registry.counter(
            "dsm_page_fetches_total", "Pages fetched into each node."
        )
        for node, pages in sorted(dsm.fetches_by_node.items()):
            fetches.inc(pages, node=node)
        faults = registry.counter(
            "dsm_page_faults_total", "Page faults taken on each node."
        )
        for node, count in sorted(dsm.faults_by_node.items()):
            faults.inc(count, node=node)
        scalars = registry.counter(
            "dsm_activity_total", "Scalar DSM activity counters by kind."
        )
        for kind, value in sorted(dsm.as_dict().items()):
            if kind in ("page_fetches", "page_faults"):
                continue  # already exported per node above
            scalars.inc(value, kind=kind)
        rehomes = registry.counter(
            "dsm_page_rehomes_total", "Home re-assignments by migratory policies."
        )
        if dsm.page_rehomes:
            rehomes.inc(dsm.page_rehomes)
        island_fetches = registry.counter(
            "dsm_island_page_fetches_total", "Page fetches by island scope."
        )
        island_seconds = registry.counter(
            "dsm_island_fetch_virtual_seconds_total",
            "Virtual seconds of page-fetch latency by island scope.",
        )
        island_fetches.inc(dsm.intra_island_page_fetches, scope="intra")
        island_fetches.inc(dsm.inter_island_page_fetches, scope="inter")
        island_seconds.inc(dsm.intra_island_fetch_seconds, scope="intra")
        island_seconds.inc(dsm.inter_island_fetch_seconds, scope="inter")
        if dsm.inter_island_bytes:
            registry.counter(
                "dsm_island_bytes_total", "Page-transfer bytes by island scope."
            ).inc(dsm.inter_island_bytes, scope="inter")

        monitors = registry.counter(
            "monitor_enters_total", "Monitor entries by kind."
        )
        monitors.inc(stats.monitors.enters, kind="total")
        monitors.inc(stats.monitors.remote_enters, kind="remote")
        monitors.inc(stats.monitors.contended_enters, kind="contended")
        sync = registry.counter(
            "sync_operations_total", "Waits, notifies and barrier passages."
        )
        sync.inc(stats.monitors.waits, kind="wait")
        sync.inc(stats.monitors.notifies, kind="notify")
        sync.inc(stats.monitors.barriers, kind="barrier")

        threads = registry.counter(
            "threads_activity_total", "Thread lifecycle activity by kind."
        )
        for kind, value in sorted(stats.threads.as_dict().items()):
            threads.inc(value, kind=kind)

        cpu = registry.counter(
            "node_cpu_virtual_seconds_total", "CPU busy virtual seconds per node."
        )
        for node, seconds in sorted(stats.cpu_seconds_by_node.items()):
            cpu.inc(seconds, node=node)
        wait = registry.counter(
            "node_wait_virtual_seconds_total",
            "Communication-wait virtual seconds per node.",
        )
        for node, seconds in sorted(stats.wait_seconds_by_node.items()):
            wait.inc(seconds, node=node)

    def finalize(
        self,
        spec: "ExperimentSpec",
        report: "ExecutionReport",
        runtime: "HyperionRuntime",
    ) -> "RunTelemetry":
        """Snapshot the finished run into a :class:`RunTelemetry`."""
        from repro.perf.profiler import CellProfile

        self._snapshot_stats(report)
        trace = runtime.engine.trace
        profile = CellProfile(
            label=spec.label(),
            wall_seconds=host_clock() - self._epoch,
            events=report.events_processed,
            execution_seconds=report.execution_seconds,
            report=report,
        )
        host = profile.as_dict()
        host["stages"] = self.host_stages
        return RunTelemetry(
            label=spec.label(),
            cache_key=spec.cache_key(),
            cached=False,
            metrics=self.registry.to_dict(),
            spans=self.spans.to_dict(),
            host=host,
            trace_summary=trace.summary() if trace is not None else None,
        )


@dataclass(slots=True)
class RunTelemetry:
    """Versioned out-of-band telemetry artifact for one cell."""

    label: str
    cache_key: str
    cached: bool
    metrics: dict
    spans: dict
    host: dict = field(default_factory=dict)
    trace_summary: dict | None = None
    version: int = TELEMETRY_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "label": self.label,
            "cache_key": self.cache_key,
            "cached": self.cached,
            "metrics": self.metrics,
            "spans": self.spans,
            "host": self.host,
            "trace_summary": self.trace_summary,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunTelemetry":
        return cls(
            label=payload["label"],
            cache_key=payload["cache_key"],
            cached=payload["cached"],
            metrics=payload.get("metrics", {"families": {}}),
            spans=payload.get("spans", {}),
            host=payload.get("host", {}),
            trace_summary=payload.get("trace_summary"),
            version=payload.get("version", TELEMETRY_VERSION),
        )

    @classmethod
    def cached_stub(cls, spec: "ExperimentSpec") -> "RunTelemetry":
        """Ledger for a cache-hit cell: marked cached, zero engine metrics."""
        return cls(
            label=spec.label(),
            cache_key=spec.cache_key(),
            cached=True,
            metrics=MetricsRegistry().to_dict(),
            spans=SpanTracer(0).to_dict(),
            host={"wall_seconds": 0.0, "events": 0, "stages": []},
        )

    def attach_profile(self, profile) -> None:
        """Fold a :class:`~repro.perf.profiler.CellProfile` into the host side."""
        merged = profile.as_dict()
        merged["stages"] = self.host.get("stages", [])
        self.host = merged


def phase_table(telemetry) -> list[tuple[str, float, float]]:
    """Per-phase virtual-time breakdown rows: (phase, seconds, share).

    Aggregates the exact per-track phase totals of a :class:`RunTelemetry`
    (or its ``to_dict`` payload); ``share`` is the fraction of the summed
    phase time.
    """
    if not isinstance(telemetry, dict):
        telemetry = telemetry.to_dict()
    phases = (telemetry.get("spans") or {}).get("phases", {})
    total = sum(phases.values())
    rows = []
    for phase, seconds in sorted(phases.items(), key=lambda kv: (-kv[1], kv[0])):
        share = seconds / total if total > 0.0 else 0.0
        rows.append((phase, seconds, share))
    return rows
